package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"looppoint/internal/artifact"
	"looppoint/internal/bbv"
	"looppoint/internal/faults"
)

// SelectionFile is the JSON-serializable form of a region selection — the
// analogue of the paper artifact's <basename>.Data directory: everything
// a downstream simulation campaign needs to locate and weight the chosen
// regions, without the profile itself.
type SelectionFile struct {
	// Program identifies the analyzed application.
	Program string `json:"program"`
	Threads int    `json:"threads"`
	// SliceUnit and Seed record the analysis parameters for provenance.
	SliceUnit uint64 `json:"slice_unit"`
	Seed      uint64 `json:"seed"`
	// TotalFiltered is the whole-program unit-of-work count.
	TotalFiltered uint64 `json:"total_filtered_instructions"`
	TotalRegions  int    `json:"total_regions"`
	// Engine names the selection engine when it differs from the classic
	// "simpoint" rule. Omitted (empty) for simpoint selections so files
	// written before engines existed and files written after are
	// byte-identical for the default path.
	Engine string `json:"engine,omitempty"`
	// Points are the selected looppoints.
	Points []SelectionPoint `json:"looppoints"`
}

// SelectionPoint is one looppoint's portable description.
type SelectionPoint struct {
	Region      int        `json:"region"`
	Start       MarkerJSON `json:"start"`
	End         MarkerJSON `json:"end"`
	Filtered    uint64     `json:"filtered_instructions"`
	Multiplier  float64    `json:"multiplier"`
	ClusterSize int        `json:"cluster_size"`
	// Spread is the cluster's mean member-to-representative distance in
	// the projected BBV space (confidence proxy; 0 = perfectly tight).
	Spread float64 `json:"spread"`
	// Draws is the number of representatives drawn from this point's
	// stratum when the engine drew more than one (stratified sampling);
	// omitted for the classic one-draw-per-cluster engines, preserving
	// byte-identity of simpoint selection files.
	Draws int `json:"draws,omitempty"`
}

// MarkerJSON is the JSON form of a (PC, count) marker.
type MarkerJSON struct {
	PC    uint64 `json:"pc,omitempty"`
	Count uint64 `json:"count,omitempty"`
	Kind  string `json:"kind,omitempty"` // "start", "end", "icount", or "" (pc marker)
}

func toMarkerJSON(m bbv.Marker) MarkerJSON {
	switch {
	case m.IsEnd:
		return MarkerJSON{Kind: "end"}
	case m.IsStart():
		return MarkerJSON{Kind: "start"}
	case m.IsICount():
		return MarkerJSON{Kind: "icount", Count: m.Count}
	default:
		return MarkerJSON{PC: m.PC, Count: m.Count}
	}
}

// Marker converts back to a bbv.Marker.
func (m MarkerJSON) Marker() (bbv.Marker, error) {
	switch m.Kind {
	case "end":
		return bbv.Marker{IsEnd: true}, nil
	case "start":
		return bbv.Marker{}, nil
	case "icount":
		return bbv.Marker{Count: m.Count}, nil
	case "":
		if m.PC == 0 {
			return bbv.Marker{}, fmt.Errorf("core: pc marker without pc")
		}
		return bbv.Marker{PC: m.PC, Count: m.Count}, nil
	}
	return bbv.Marker{}, fmt.Errorf("core: unknown marker kind %q", m.Kind)
}

// File converts a selection to its portable form.
func (s *Selection) File() *SelectionFile {
	a := s.Analysis
	f := &SelectionFile{
		Program:       a.Prog.Name,
		Threads:       a.Prog.NumThreads(),
		SliceUnit:     a.Config.SliceUnit,
		Seed:          a.Config.Seed,
		TotalFiltered: a.Profile.TotalFiltered,
		TotalRegions:  len(a.Profile.Regions),
	}
	if engine := s.Engine(); engine != "simpoint" {
		f.Engine = engine
	}
	for _, lp := range s.Points {
		p := SelectionPoint{
			Region:      lp.Region.Index,
			Start:       toMarkerJSON(lp.Region.Start),
			End:         toMarkerJSON(lp.Region.End),
			Filtered:    lp.Region.Filtered,
			Multiplier:  lp.Multiplier,
			ClusterSize: lp.ClusterSize,
			Spread:      lp.Spread,
		}
		if lp.Draws > 1 {
			p.Draws = lp.Draws
		}
		f.Points = append(f.Points, p)
	}
	return f
}

// Selection files are written inside a versioned integrity envelope:
//
//	{"format":"looppoint-selection","version":2,"fnv1a":"0x…","selection":{…}}
//
// The checksum covers the json.Compact-normalized payload bytes, so it
// is insensitive to the indentation the envelope encoder applies (and to
// any pretty-printing a human round-trips the file through) while still
// catching every semantic byte flip. Loaders accept legacy bare
// selection JSON (no "format" key) unchanged for pre-envelope files.
const (
	selectionFormat  = "looppoint-selection"
	selectionVersion = 2
)

type selectionEnvelope struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	FNV1a   string          `json:"fnv1a"`
	Payload json.RawMessage `json:"selection"`
}

// WriteJSON writes the selection file inside its integrity envelope.
func (f *SelectionFile) WriteJSON(w io.Writer) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return err
	}
	env := selectionEnvelope{
		Format:  selectionFormat,
		Version: selectionVersion,
		FNV1a:   fmt.Sprintf("%#x", artifact.Checksum(payload)),
		Payload: payload,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&env)
}

// SaveJSON writes the selection file to path. Injection site
// "core.selection.save" can fail the write or corrupt the saved bytes.
func (f *SelectionFile) SaveJSON(path string) error {
	if err := faults.Check("core.selection.save"); err != nil {
		return fmt.Errorf("core: save selection %s: %w", path, err)
	}
	if faults.Enabled() {
		var buf bytes.Buffer
		if err := f.WriteJSON(&buf); err != nil {
			return err
		}
		data := buf.Bytes()
		faults.CorruptBytes("core.selection.save", data)
		return os.WriteFile(path, data, 0o644)
	}
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteJSON(fd); err != nil {
		fd.Close()
		return err
	}
	return fd.Close()
}

// LoadSelectionFile reads and validates a selection file — the v2
// integrity envelope, or legacy bare selection JSON. Failures wrap the
// artifact sentinels: ErrTruncated for input that ends mid-JSON,
// ErrVersion for envelope version skew, ErrCorrupt for checksum
// mismatches and payload validation failures. Injection site
// "core.selection.load" can fail the read or corrupt the bytes.
func LoadSelectionFile(r io.Reader) (*SelectionFile, error) {
	if err := faults.Check("core.selection.load"); err != nil {
		return nil, fmt.Errorf("core: selection file: %w", err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: selection file: %w", err)
	}
	faults.CorruptBytes("core.selection.load", data)

	var probe struct {
		Format string `json:"format"`
	}
	// A decode error here is deliberately ignored: garbage input falls
	// through to the strict legacy decoder, which classifies it.
	_ = json.Unmarshal(data, &probe)
	if probe.Format == "" {
		return decodeSelection(data)
	}
	if probe.Format != selectionFormat {
		return nil, fmt.Errorf("core: selection file format %q: %w", probe.Format, artifact.ErrCorrupt)
	}
	var env selectionEnvelope
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("core: selection envelope: %v: %w", err, classifyJSONErr(err))
	}
	if err := expectEOF(dec); err != nil {
		return nil, fmt.Errorf("core: selection envelope: %w", err)
	}
	if env.Version != selectionVersion {
		return nil, fmt.Errorf("core: selection file version %d (want %d): %w",
			env.Version, selectionVersion, artifact.ErrVersion)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Payload); err != nil {
		return nil, fmt.Errorf("core: selection payload: %v: %w", err, artifact.ErrCorrupt)
	}
	if got := fmt.Sprintf("%#x", artifact.Checksum(compact.Bytes())); got != env.FNV1a {
		return nil, fmt.Errorf("core: selection checksum mismatch (file %s, computed %s): %w",
			env.FNV1a, got, artifact.ErrCorrupt)
	}
	return decodeSelection(compact.Bytes())
}

// classifyJSONErr maps a JSON decode failure onto the artifact
// sentinels: input that simply stops is truncation, everything else is
// corruption.
func classifyJSONErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return artifact.ErrTruncated
	}
	return artifact.ErrCorrupt
}

// expectEOF rejects non-whitespace bytes after the decoded value, so
// damage past the closing brace cannot slip through unnoticed.
func expectEOF(dec *json.Decoder) error {
	if t, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON value (%v): %w", t, artifact.ErrCorrupt)
	}
	return nil
}

// decodeSelection strictly decodes and validates the selection payload
// (shared by the envelope and legacy paths). Validation failures wrap
// artifact.ErrCorrupt: the file parsed but its content is inconsistent.
func decodeSelection(data []byte) (*SelectionFile, error) {
	var f SelectionFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("core: selection file: %v: %w", err, classifyJSONErr(err))
	}
	if err := expectEOF(dec); err != nil {
		return nil, fmt.Errorf("core: selection file: %w", err)
	}
	if f.Program == "" || f.Threads < 1 || len(f.Points) == 0 {
		return nil, fmt.Errorf("core: selection file incomplete (program %q, %d threads, %d points): %w",
			f.Program, f.Threads, len(f.Points), artifact.ErrCorrupt)
	}
	var mass float64
	for i, p := range f.Points {
		if _, err := p.Start.Marker(); err != nil {
			return nil, fmt.Errorf("core: point %d start: %v: %w", i, err, artifact.ErrCorrupt)
		}
		if _, err := p.End.Marker(); err != nil {
			return nil, fmt.Errorf("core: point %d end: %v: %w", i, err, artifact.ErrCorrupt)
		}
		if p.Multiplier < 1 {
			return nil, fmt.Errorf("core: point %d multiplier %f < 1: %w", i, p.Multiplier, artifact.ErrCorrupt)
		}
		mass += p.Multiplier * float64(p.Filtered)
	}
	if f.TotalFiltered > 0 {
		if ratio := mass / float64(f.TotalFiltered); ratio < 0.99 || ratio > 1.01 {
			return nil, fmt.Errorf("core: selection file multiplier mass %.3f of total work (corrupted?): %w",
				ratio, artifact.ErrCorrupt)
		}
	}
	return &f, nil
}
