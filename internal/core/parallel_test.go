package core

import (
	"reflect"
	"testing"

	"looppoint/internal/bbv"
	"looppoint/internal/exec"
	"looppoint/internal/faults"
	"looppoint/internal/isa"
	"looppoint/internal/omp"
	"looppoint/internal/pinball"
	"looppoint/internal/testprog"
)

// analysisEquals compares everything the analysis derives from the
// recording. Pinball and Config are excluded: the pinball is shared by
// construction and the config legitimately differs in worker knobs.
func analysisEquals(t *testing.T, label string, got, want *Analysis) {
	t.Helper()
	if !reflect.DeepEqual(got.Graph, want.Graph) {
		t.Errorf("%s: DCFG differs (%v vs %v)", label, got.Graph, want.Graph)
	}
	if !reflect.DeepEqual(got.Loops, want.Loops) {
		t.Errorf("%s: loop table differs", label)
	}
	if !reflect.DeepEqual(got.Markers, want.Markers) {
		t.Errorf("%s: markers differ (%v vs %v)", label, got.Markers, want.Markers)
	}
	if !reflect.DeepEqual(got.Profile, want.Profile) {
		t.Errorf("%s: profile differs (%d vs %d regions, totals %d/%d vs %d/%d)",
			label, len(got.Profile.Regions), len(want.Profile.Regions),
			got.Profile.TotalFiltered, got.Profile.TotalICount,
			want.Profile.TotalFiltered, want.Profile.TotalICount)
	}
}

func parallelTestPrograms() map[string]*isa.Program {
	return map[string]*isa.Program{
		"phased-passive": testprog.Phased(4, 10, 150, omp.Passive),
		"phased-active":  testprog.Phased(4, 12, 150, omp.Active),
		"hetero":         testprog.Heterogeneous(4, 10, 120, omp.Passive),
	}
}

// recordFor records the analysis pinball exactly as Analyze does.
func recordFor(t *testing.T, p *isa.Program, cfg Config) *pinball.Pinball {
	t.Helper()
	cfg.fill()
	pb, err := pinball.RecordWithOptions(p, cfg.Seed, exec.RunOpts{
		FlowWindow: cfg.FlowWindow, QuantumBias: cfg.HostBias,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

// TestAnalyzeParallelIdentity is the tentpole pin: the checkpoint-
// parallel analysis is identical to the serial reference at every worker
// count and shard width — including a shard width wider than the run
// (degenerates to one serial shard) and a tiny width that produces
// shards with no marker entries at all. analyzeParallel is called
// directly, so the serial fallback cannot mask a divergence.
func TestAnalyzeParallelIdentity(t *testing.T) {
	for name, p := range parallelTestPrograms() {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			cfg.fill()
			pb := recordFor(t, p, cfg)
			want, err := analyzeSerial(p, cfg, pb)
			if err != nil {
				t.Fatal(err)
			}
			total := pb.Schedule.Steps()
			for _, workers := range []int{1, 2, 4, 8} {
				for _, every := range []uint64{0, total / 2, total / 5, total / 13, total + 1000, 512} {
					pcfg := cfg
					pcfg.AnalyzeWorkers = workers
					pcfg.CheckpointEvery = every
					got, err := analyzeParallel(p, pcfg, pb)
					if err != nil {
						t.Fatalf("j=%d every=%d: %v", workers, every, err)
					}
					analysisEquals(t, name+" parallel", got, want)
				}
			}
		})
	}
}

// TestAnalyzeParallelBoundaryOnMarker forces checkpoint boundaries to
// land exactly on region-close positions (the marker instruction is the
// last of its shard) and exactly one step before them (the marker is the
// first event of the next shard) — the off-by-one cases of the
// close-then-account ordering.
func TestAnalyzeParallelBoundaryOnMarker(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	cfg := testConfig()
	cfg.fill()
	pb := recordFor(t, p, cfg)
	want, err := analyzeSerial(p, cfg, pb)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Profile.Regions) < 2 {
		t.Fatal("need at least two regions for boundary cases")
	}
	// The global unfiltered count doubles as the schedule step offset, so
	// a region's EndICount IS a valid checkpoint boundary.
	end := want.Profile.Regions[0].EndICount
	for _, every := range []uint64{end, end - 1, end + 1} {
		pcfg := cfg
		pcfg.AnalyzeWorkers = 2
		pcfg.CheckpointEvery = every
		got, err := analyzeParallel(p, pcfg, pb)
		if err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		analysisEquals(t, "boundary-on-marker", got, want)
	}
}

// TestAnalyzeParallelZeroMarkerShards verifies the tiny-shard width used
// in the identity suite really does produce shards with no marker
// entries, so the zero-marker merge path is genuinely covered.
func TestAnalyzeParallelZeroMarkerShards(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	cfg := testConfig()
	cfg.fill()
	pb := recordFor(t, p, cfg)
	a, err := analyzeSerial(p, cfg, pb)
	if err != nil {
		t.Fatal(err)
	}
	cks, err := pb.Checkpoints(p, 512)
	if err != nil {
		t.Fatal(err)
	}
	total := pb.Schedule.Steps()
	empty := 0
	for k, ck := range cks {
		w := total - ck.Step
		if k < len(cks)-1 {
			w = cks[k+1].Step - ck.Step
		}
		sc := bbv.NewScanner(a.Markers, false)
		if _, err := pb.ReplayWindow(p, ck, w, sc); err != nil {
			t.Fatal(err)
		}
		if len(sc.Scan().Events) == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatalf("no zero-marker shard among %d shards at width 512; identity suite is not covering that case", len(cks))
	}
}

// TestAnalyzeShardFaultDegradesToSerial arms the core.analyze.shard
// fault site and checks the public Analyze entry point absorbs shard
// failures by re-replaying serially — same analysis, no error.
func TestAnalyzeShardFaultDegradesToSerial(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	cfg := testConfig()
	cfg.AnalyzeWorkers = 4
	want, err := Analyze(p, cfg) // no faults armed: parallel path
	if err != nil {
		t.Fatal(err)
	}
	defer faults.Enable(faults.NewPlan(7,
		faults.Rule{Site: "core.analyze.shard", Kind: faults.Transient, Rate: 1}))()
	got, err := Analyze(p, cfg)
	if err != nil {
		t.Fatalf("Analyze with injected shard faults: %v", err)
	}
	analysisEquals(t, "fault-degraded", got, want)
}

// TestAnalyzePublicParallelMatchesSerial pins the public entry point:
// Analyze with AnalyzeWorkers set equals Analyze without, and SlowPath
// or VariableSlices force the serial path even when workers are set.
func TestAnalyzePublicParallelMatchesSerial(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	serialCfg := testConfig()
	want, err := Analyze(p, serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := testConfig()
	parCfg.AnalyzeWorkers = 4
	got, err := Analyze(p, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	analysisEquals(t, "public-parallel", got, want)

	slowCfg := testConfig()
	slowCfg.AnalyzeWorkers = 4
	slowCfg.SlowPath = true
	slow, err := Analyze(p, slowCfg)
	if err != nil {
		t.Fatal(err)
	}
	analysisEquals(t, "slowpath-forced-serial", slow, want)
}
