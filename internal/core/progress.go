package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"looppoint/internal/artifact"
	"looppoint/internal/bbv"
	"looppoint/internal/dcfg"
	"looppoint/internal/exec"
	"looppoint/internal/faults"
	"looppoint/internal/isa"
	"looppoint/internal/pinball"
)

// Durable mid-job progress (crash-only analysis). With Config.ProgressDir
// set, Analyze runs as a sequence of bounded epochs over the recording —
// the same deterministic checkpoint boundaries the parallel front-end
// shards at — and persists, after every epoch, everything a fresh process
// needs to continue: the replay checkpoint (snapshot + syscall cursors +
// step), plus the analysis carry (partial DCFG and merge carry in the
// DCFG phase; decider and stitcher state in the BBV phase). A worker
// SIGKILLed mid-analysis resumes from its last durable epoch instead of
// step 0, and the resumed profile is byte-identical to an uninterrupted
// run — pinned by the progress identity and chaos tests.
//
// Recovery ladder (never wedges a job):
//
//	latest epoch file → next-older epoch file → restart from step 0
//
// Every rung is checksummed and validated before use; a torn write, bit
// rot, a version skew, or a foreign fingerprint just falls to the next
// rung. Saves are best-effort: a failed save (injection site
// "core.progress.save", disk trouble) loses at most one epoch of
// progress, never correctness. If the durable path itself errors,
// Analyze falls back to the stateless pipeline on a fresh recording.

// progressVersion is the progress-file format version.
const progressVersion = 1

// progMagic brands durable progress files.
const progMagic = "LOOPPROG"

// progressRetain is how many epoch files are kept per job: the newest
// and one fallback rung for the recovery ladder.
const progressRetain = 2

// ProgressStats aggregates durable-progress counters, shared by every
// job that is handed the same instance (the serving layer exposes them
// via /v1/stats). All methods are safe for concurrent use and for nil
// receivers — a nil sink counts nothing.
type ProgressStats struct {
	saves        atomic.Uint64
	saveFailures atomic.Uint64
	recoveries   atomic.Uint64
	stepsSaved   atomic.Uint64
	ladderFalls  atomic.Uint64
}

func (s *ProgressStats) countSave() {
	if s != nil {
		s.saves.Add(1)
	}
}

func (s *ProgressStats) countSaveFailure() {
	if s != nil {
		s.saveFailures.Add(1)
	}
}

func (s *ProgressStats) countRecovery(stepsSaved uint64) {
	if s != nil {
		s.recoveries.Add(1)
		s.stepsSaved.Add(stepsSaved)
	}
}

func (s *ProgressStats) countLadderFall() {
	if s != nil {
		s.ladderFalls.Add(1)
	}
}

// Snapshot returns the current counter values: durable epoch saves,
// failed saves, successful recoveries, schedule steps those recoveries
// skipped re-replaying, and recovery-ladder falls (progress files
// rejected as torn/corrupt/foreign).
func (s *ProgressStats) Snapshot() (saves, saveFailures, recoveries, stepsSaved, ladderFalls uint64) {
	if s == nil {
		return
	}
	return s.saves.Load(), s.saveFailures.Load(), s.recoveries.Load(),
		s.stepsSaved.Load(), s.ladderFalls.Load()
}

// progressState is the JSON carry attached to each epoch's checkpoint.
// Phase 0 persists the partial DCFG merge (graph + carry); phase 1
// persists the close-decision and stitch chain (decider + stitcher). The
// whole blob lives inside the checksummed progress envelope, so torn or
// flipped bytes are caught before any of it is parsed.
type progressState struct {
	Key         string
	Fingerprint string
	Epoch       int
	// Phase is 0 while the DCFG replay is in progress, 1 during the BBV
	// replay (markers and loops are re-derived from the finished graph on
	// resume — they are deterministic functions of it).
	Phase int
	Total uint64
	Every uint64

	Graph    *dcfg.GraphState   `json:",omitempty"`
	Carry    *dcfg.CarryState   `json:",omitempty"`
	Decider  *bbv.DeciderState  `json:",omitempty"`
	Stitcher *bbv.StitcherState `json:",omitempty"`
}

func marshalProgressState(st *progressState) ([]byte, error) { return json.Marshal(st) }

func unmarshalProgressState(data []byte) (*progressState, error) {
	st := &progressState{}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, err
	}
	return st, nil
}

// progressFingerprint hashes the configuration that determines the
// recording and the profile: two jobs with the same key and fingerprint
// may resume each other's progress; anything else falls the ladder.
func progressFingerprint(prog *isa.Program, cfg *Config) string {
	sig := fmt.Sprintf("v%d|prog=%s|threads=%d|slice=%d|seed=%d|flow=%d|budget=%d|bias=%v|nospin=%v",
		progressVersion, prog.Name, prog.NumThreads(), cfg.SliceUnit, cfg.Seed,
		cfg.FlowWindow, cfg.MarkerEntryBudget, cfg.HostBias, cfg.NoSpinFilter)
	return fmt.Sprintf("%016x", artifact.Checksum([]byte(sig)))
}

// progressBase returns the per-job file-name stem inside the progress
// directory: <key>-<fingerprint>. Every file the durable path writes
// shares this stem, so one job's files never collide with another's and
// a changed configuration starts cleanly instead of mis-resuming.
func progressBase(dir string, prog *isa.Program, cfg *Config) string {
	key := cfg.ProgressKey
	if key == "" {
		key = fmt.Sprintf("%016x", artifact.Checksum([]byte(prog.Name)))
	}
	return filepath.Join(dir, key+"-"+progressFingerprint(prog, cfg))
}

// encodeProgress wraps one epoch's checkpoint and carry state in the
// progress envelope: magic, version, length-prefixed checkpoint envelope
// (pinball.EncodeCheckpoint), length-prefixed JSON state, trailing
// FNV-1a over everything after the magic.
func encodeProgress(ck pinball.Checkpoint, st *progressState) ([]byte, error) {
	ckBytes, err := pinball.EncodeCheckpoint(ck)
	if err != nil {
		return nil, err
	}
	stBytes, err := marshalProgressState(st)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(progMagic)+8+8+len(ckBytes)+8+len(stBytes)+16)
	buf = append(buf, progMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, progressVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(ckBytes)))
	buf = append(buf, ckBytes...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(stBytes)))
	buf = append(buf, stBytes...)
	sum := artifact.Update(artifact.FNVOffset, buf[len(progMagic):])
	return binary.LittleEndian.AppendUint64(buf, sum), nil
}

// decodeProgress verifies and unwraps a progress envelope, classifying
// failures into the artifact sentinels for the recovery ladder.
func decodeProgress(data []byte) (pinball.Checkpoint, *progressState, error) {
	var none pinball.Checkpoint
	if len(data) < len(progMagic) {
		return none, nil, fmt.Errorf("core: progress header: %w at byte offset %d", artifact.ErrTruncated, len(data))
	}
	if string(data[:len(progMagic)]) != progMagic {
		return none, nil, fmt.Errorf("core: bad progress magic %q: %w", data[:len(progMagic)], artifact.ErrCorrupt)
	}
	// Integrity first: the payload holds variable-length sections, so a
	// flipped length byte would otherwise send the section reads astray.
	if len(data) < len(progMagic)+8 {
		return none, nil, fmt.Errorf("core: progress integrity hash: %w at byte offset %d", artifact.ErrTruncated, len(data))
	}
	payload := data[len(progMagic) : len(data)-8]
	want := artifact.Update(artifact.FNVOffset, payload)
	if got := binary.LittleEndian.Uint64(data[len(data)-8:]); got != want {
		return none, nil, fmt.Errorf("core: progress integrity hash mismatch (file %#x, computed %#x): %w", got, want, artifact.ErrCorrupt)
	}
	off := 0
	u64 := func() (uint64, bool) {
		if off+8 > len(payload) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(payload[off:])
		off += 8
		return v, true
	}
	v, ok := u64()
	if !ok {
		return none, nil, fmt.Errorf("core: progress version: %w at byte offset %d", artifact.ErrTruncated, len(data))
	}
	if v != progressVersion {
		return none, nil, fmt.Errorf("core: progress version %d (want %d): %w", v, progressVersion, artifact.ErrVersion)
	}
	section := func(name string) ([]byte, error) {
		n, ok := u64()
		if !ok || n > uint64(len(payload)-off) {
			return nil, fmt.Errorf("core: progress %s: %w at byte offset %d", name, artifact.ErrTruncated, len(data))
		}
		s := payload[off : off+int(n)]
		off += int(n)
		return s, nil
	}
	ckBytes, err := section("checkpoint")
	if err != nil {
		return none, nil, err
	}
	stBytes, err := section("state")
	if err != nil {
		return none, nil, err
	}
	ck, err := pinball.DecodeCheckpoint(ckBytes)
	if err != nil {
		return none, nil, err
	}
	st, err := unmarshalProgressState(stBytes)
	if err != nil {
		return none, nil, fmt.Errorf("core: progress state: %v: %w", err, artifact.ErrCorrupt)
	}
	return ck, st, nil
}

// progressPath names one epoch's progress file.
func progressPath(base string, epoch int) string {
	return fmt.Sprintf("%s.e%06d.progress", base, epoch)
}

// saveEpoch persists one epoch durably (temp + fsync + rename). Saves
// are best-effort: any failure — including an injected Transient at site
// "core.progress.save" — is counted and swallowed; the job keeps going
// and at most one epoch of resumability is lost. An injected Corrupt
// flips bytes in the written file, which the load-side checksum catches.
func saveEpoch(base string, ck pinball.Checkpoint, st *progressState, ps *ProgressStats) {
	data, err := encodeProgress(ck, st)
	if err != nil {
		ps.countSaveFailure()
		return
	}
	if err := faults.Check("core.progress.save"); err != nil {
		ps.countSaveFailure()
		return
	}
	faults.CorruptBytes("core.progress.save", data)
	if err := artifact.WriteFileDurable(progressPath(base, st.Epoch), data); err != nil {
		ps.countSaveFailure()
		return
	}
	ps.countSave()
	// Retention: this epoch plus one fallback rung.
	os.Remove(progressPath(base, st.Epoch-progressRetain))
}

// loadEpoch reads and verifies one progress file. Injection site
// "core.progress.load" can fail the read (Transient) or corrupt the
// bytes after they leave disk (Corrupt).
func loadEpoch(path string) (pinball.Checkpoint, *progressState, error) {
	if err := faults.Check("core.progress.load"); err != nil {
		return pinball.Checkpoint{}, nil, fmt.Errorf("core: load progress %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return pinball.Checkpoint{}, nil, err
	}
	faults.CorruptBytes("core.progress.load", data)
	ck, st, err := decodeProgress(data)
	if err != nil {
		return pinball.Checkpoint{}, nil, fmt.Errorf("load %s: %w", path, err)
	}
	return ck, st, nil
}

// progressCandidates lists a job's epoch files newest-first — the
// recovery ladder's rungs. Stray temp files from a crash between write
// and rename never match the ".e<N>.progress" shape, so they are
// ignored by construction.
func progressCandidates(base string) []string {
	dir, stem := filepath.Split(base)
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	type cand struct {
		path  string
		epoch int
	}
	var cands []cand
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, stem+".e") || !strings.HasSuffix(name, ".progress") {
			continue
		}
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, stem+".e"), ".progress")
		epoch, err := strconv.Atoi(numeric)
		if err != nil {
			continue
		}
		cands = append(cands, cand{filepath.Join(dir, name), epoch})
	}
	sort.Slice(cands, func(i, k int) bool { return cands[i].epoch > cands[k].epoch })
	paths := make([]string, len(cands))
	for i, c := range cands {
		paths[i] = c.path
	}
	return paths
}

// resumedAnalysis is a validated recovery-ladder rung, restored into
// live structures and ready to continue the epoch loop.
type resumedAnalysis struct {
	ck    pinball.Checkpoint
	epoch int
	phase int
	// Phase-0 carry.
	g     *dcfg.Graph
	carry dcfg.Carry
	// Phase-1 carry (graph is complete; loops/markers re-derived).
	loops   *dcfg.LoopTable
	markers []uint64
	modulus map[uint64]uint64
	dec     *bbv.Decider
	stitch  *bbv.Stitcher
}

// recoverAnalysis walks the recovery ladder: newest epoch file first,
// falling to older rungs on any load or validation failure, nil when
// every rung fails (restart from step 0). A rung whose bytes are bad
// (torn, corrupt, version-skewed) is deleted so it cannot re-fail every
// future restart; a rung that merely failed to read (injected Transient,
// I/O trouble) is left in place.
func recoverAnalysis(prog *isa.Program, cfg *Config, pb *pinball.Pinball, base, key, fp string, total uint64) *resumedAnalysis {
	ps := cfg.Progress
	for _, path := range progressCandidates(base) {
		r, err := restoreRung(prog, cfg, pb, path, key, fp, total)
		if err != nil {
			if !errors.Is(err, faults.ErrInjected) {
				os.Remove(path)
			}
			ps.countLadderFall()
			continue
		}
		steps := r.ck.Step
		if r.phase == 1 {
			steps += total // the whole DCFG pass is behind us too
		}
		ps.countRecovery(steps)
		return r
	}
	return nil
}

// restoreRung loads one epoch file and restores it into live structures,
// validating everything against the program and recording first.
func restoreRung(prog *isa.Program, cfg *Config, pb *pinball.Pinball, path, key, fp string, total uint64) (*resumedAnalysis, error) {
	ck, st, err := loadEpoch(path)
	if err != nil {
		return nil, err
	}
	if st.Key != key || st.Fingerprint != fp {
		return nil, fmt.Errorf("core: progress file %s belongs to job %s/%s: %w", path, st.Key, st.Fingerprint, artifact.ErrCorrupt)
	}
	if st.Total != total || ck.Step > total {
		return nil, fmt.Errorf("core: progress file %s positions step %d of %d in a %d-step recording: %w",
			path, ck.Step, st.Total, total, artifact.ErrCorrupt)
	}
	if len(ck.Snap.Threads) != prog.NumThreads() || len(ck.SysPos) != len(pb.Syscalls) {
		return nil, fmt.Errorf("core: progress file %s snapshot shape mismatch: %w", path, artifact.ErrCorrupt)
	}
	if st.Graph == nil {
		return nil, fmt.Errorf("core: progress file %s has no graph: %w", path, artifact.ErrCorrupt)
	}
	g, err := dcfg.RestoreGraph(prog, st.Graph)
	if err != nil {
		return nil, fmt.Errorf("core: progress file %s: %v: %w", path, err, artifact.ErrCorrupt)
	}
	r := &resumedAnalysis{ck: ck, epoch: st.Epoch, phase: st.Phase, g: g}
	switch st.Phase {
	case 0:
		if st.Carry == nil {
			return nil, fmt.Errorf("core: progress file %s has no merge carry: %w", path, artifact.ErrCorrupt)
		}
		if r.carry, err = dcfg.RestoreCarry(prog, *st.Carry); err != nil {
			return nil, fmt.Errorf("core: progress file %s: %v: %w", path, err, artifact.ErrCorrupt)
		}
	case 1:
		if st.Decider == nil || st.Stitcher == nil {
			return nil, fmt.Errorf("core: progress file %s has no decider/stitcher: %w", path, artifact.ErrCorrupt)
		}
		r.loops = g.FindLoops()
		if r.markers, r.modulus, err = markersAndModulus(prog, cfg, pb, g, r.loops); err != nil {
			return nil, fmt.Errorf("core: progress file %s: %v: %w", path, err, artifact.ErrCorrupt)
		}
		if r.dec, err = bbv.RestoreDecider(sliceTargetFor(prog, cfg), r.modulus, st.Decider); err != nil {
			return nil, fmt.Errorf("core: progress file %s: %v: %w", path, err, artifact.ErrCorrupt)
		}
		if r.stitch, err = st.Stitcher.RestoreStitcher(prog); err != nil {
			return nil, fmt.Errorf("core: progress file %s: %v: %w", path, err, artifact.ErrCorrupt)
		}
	default:
		return nil, fmt.Errorf("core: progress file %s has unknown phase %d: %w", path, st.Phase, artifact.ErrCorrupt)
	}
	return r, nil
}

// durablePinball loads the job's saved recording, or records afresh and
// saves it durably. The recording is deterministic in the fingerprinted
// config, so a reload and a re-record are interchangeable; a missing,
// torn, or foreign pinball file just costs a re-record.
func durablePinball(prog *isa.Program, cfg *Config, base string) (*pinball.Pinball, error) {
	path := base + ".pinball"
	if pb, err := pinball.Load(path); err == nil && pb.Name == prog.Name {
		return pb, nil
	}
	pb, err := pinball.RecordWithOptions(prog, cfg.Seed, exec.RunOpts{
		FlowWindow:  cfg.FlowWindow,
		QuantumBias: cfg.HostBias,
	})
	if err != nil {
		return nil, fmt.Errorf("core: analyze %s: %w", prog.Name, err)
	}
	if err := artifact.WriteFileDurable(path, pb.AppendBinary(nil)); err != nil {
		cfg.Progress.countSaveFailure() // best-effort: a restart re-records
	}
	return pb, nil
}

// replayEpoch replays one epoch's window of the schedule from the
// checkpoint with a single observer attached (block tier when the
// observer supports it, mirroring Replay), and returns the checkpoint at
// the window's end — the exact carry the next epoch resumes from.
func replayEpoch(prog *isa.Program, pb *pinball.Pinball, from pinball.Checkpoint, steps uint64, obs exec.Observer) (_ pinball.Checkpoint, err error) {
	defer exec.Recover(&err)
	m, replay := pb.ReplayFrom(prog, from)
	if bo, ok := obs.(exec.BlockObserver); ok {
		m.AddBlockObserver(bo)
	} else {
		m.AddObserver(obs)
	}
	window := pb.Schedule.Skip(from.Step).Take(steps)
	if err := m.RunSchedule(window); err != nil {
		return pinball.Checkpoint{}, fmt.Errorf("core: epoch at step %d of %s: %w", from.Step, prog.Name, err)
	}
	if replay.Diverged {
		return pinball.Checkpoint{}, fmt.Errorf("core: syscall injection log exhausted at step %d of %s", from.Step, prog.Name)
	}
	return pinball.Checkpoint{Snap: m.Snapshot(), SysPos: replay.Positions(), Step: from.Step + steps}, nil
}

// analyzeDurable is the crash-only analysis pipeline: record (or reload)
// the pinball, then replay it in durable epochs — DCFG phase, then BBV
// phase — persisting a recovery point after every epoch. The profile is
// byte-identical to the serial and parallel paths (the epoch loop is the
// shard pipeline run serially at ProgressEvery-step boundaries, and
// profiles are invariant under shard widths). Any error returns to
// Analyze, which falls back to the stateless pipeline.
func analyzeDurable(prog *isa.Program, cfg Config) (*Analysis, error) {
	if err := os.MkdirAll(cfg.ProgressDir, 0o755); err != nil {
		return nil, fmt.Errorf("core: progress dir: %w", err)
	}
	base := progressBase(cfg.ProgressDir, prog, &cfg)
	key := cfg.ProgressKey
	if key == "" {
		key = fmt.Sprintf("%016x", artifact.Checksum([]byte(prog.Name)))
	}
	fp := progressFingerprint(prog, &cfg)
	ps := cfg.Progress

	pb, err := durablePinball(prog, &cfg, base)
	if err != nil {
		return nil, err
	}
	if err := pb.Verify(); err != nil {
		return nil, err
	}
	total := pb.Schedule.Steps()
	every := cfg.ProgressEvery
	if every == 0 {
		every = shardEvery(&cfg, total)
	}

	// Start state: step 0 of the DCFG phase, or wherever the recovery
	// ladder lands.
	g := dcfg.NewGraph(prog)
	carry := dcfg.StartCarry(prog.NumThreads())
	ck := pb.StartCheckpoint()
	phase, epoch := 0, 0
	var (
		loops   *dcfg.LoopTable
		markers []uint64
		modulus map[uint64]uint64
		dec     *bbv.Decider
		stitch  *bbv.Stitcher
	)
	if r := recoverAnalysis(prog, &cfg, pb, base, key, fp, total); r != nil {
		ck, epoch, phase, g = r.ck, r.epoch, r.phase, r.g
		carry = r.carry
		loops, markers, modulus = r.loops, r.markers, r.modulus
		dec, stitch = r.dec, r.stitch
	}

	width := func(step uint64) uint64 {
		if rem := total - step; rem < every {
			return rem
		}
		return every
	}

	// Phase 0: DCFG epochs. One ShardBuilder window per epoch, merged
	// into the growing graph through the carry chain — exactly the
	// parallel front-end's merge, in shard order.
	if phase == 0 {
		for ck.Step < total {
			w := width(ck.Step)
			sb := dcfg.NewShardBuilder(prog.NumThreads())
			next, err := replayEpoch(prog, pb, ck, w, sb)
			if err != nil {
				return nil, err
			}
			if carry, err = sb.MergeInto(g, carry); err != nil {
				return nil, fmt.Errorf("core: %s: %w", prog.Name, err)
			}
			ck = next
			epoch++
			cs := carry.State()
			saveEpoch(base, ck, &progressState{
				Key: key, Fingerprint: fp, Epoch: epoch, Phase: 0,
				Total: total, Every: every, Graph: g.State(), Carry: &cs,
			}, ps)
		}
		loops = g.FindLoops()
		if markers, modulus, err = markersAndModulus(prog, &cfg, pb, g, loops); err != nil {
			return nil, err
		}
		dec = bbv.NewDecider(sliceTargetFor(prog, &cfg), modulus)
		stitch = bbv.NewStitcher(prog)
		ck = pb.StartCheckpoint()
		phase = 1
		// A phase-boundary save, so a crash here resumes into the BBV
		// phase instead of re-replaying the whole DCFG pass.
		epoch++
		ds, ss := dec.State(), stitch.State()
		saveEpoch(base, ck, &progressState{
			Key: key, Fingerprint: fp, Epoch: epoch, Phase: 1,
			Total: total, Every: every, Graph: g.State(), Decider: ds, Stitcher: ss,
		}, ps)
	}

	// Phase 1: BBV epochs. Scan the window, chain the close decisions,
	// accumulate the window's pieces, stitch — the parallel front-end's
	// scan → decide → accumulate pipeline, one shard at a time.
	for ck.Step < total {
		w := width(ck.Step)
		sc := bbv.NewScanner(markers, cfg.NoSpinFilter)
		if _, err := pb.ReplayWindow(prog, ck, w, sc); err != nil {
			return nil, fmt.Errorf("core: BBV scan of %s: %w", prog.Name, err)
		}
		closes := dec.Feed(sc.Scan())
		events := make([]int, len(closes))
		for j, c := range closes {
			events[j] = c.Event
		}
		ac := bbv.NewAccumulator(prog, markers, events, cfg.NoSpinFilter)
		next, err := replayEpoch(prog, pb, ck, w, ac)
		if err != nil {
			return nil, err
		}
		stitch.Feed(ac.Pieces(), closes)
		ck = next
		epoch++
		ds, ss := dec.State(), stitch.State()
		saveEpoch(base, ck, &progressState{
			Key: key, Fingerprint: fp, Epoch: epoch, Phase: 1,
			Total: total, Every: every, Graph: g.State(), Decider: ds, Stitcher: ss,
		}, ps)
	}

	totFiltered, totICount := dec.Totals()
	prof := stitch.Finish(prog, dec.MarkerCounts(), totFiltered, totICount)
	if len(prof.Regions) == 0 {
		return nil, fmt.Errorf("core: %s produced no regions", prog.Name)
	}
	return &Analysis{
		Prog: prog, Pinball: pb, Graph: g, Loops: loops,
		Markers: markers, Profile: prof, Config: cfg,
	}, nil
}
