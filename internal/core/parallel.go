package core

import (
	"context"
	"fmt"

	"looppoint/internal/bbv"
	"looppoint/internal/dcfg"
	"looppoint/internal/faults"
	"looppoint/internal/isa"
	"looppoint/internal/pinball"
	"looppoint/internal/pool"
)

// Checkpoint-parallel analysis front-end. The recording is swept once to
// capture snapshots at deterministic step boundaries; each shard of the
// schedule then replays independently from its checkpoint, and per-shard
// observer state merges in shard order:
//
//   - DCFG shards carry symbolic references across boundaries
//     (dcfg.ShardBuilder); the merged graph deep-equals the serial one.
//   - BBV runs as scan → decide → accumulate (bbv.Scanner / Decider /
//     Accumulator): the cheap close-rule decisions chain serially in
//     shard order while the expensive vector accumulation of decided
//     shards overlaps the scanning of later ones.
//
// Marker selection needs the *whole* merged DCFG (StableMarkers ranks
// globally), so the DCFG pass is a genuine barrier before the BBV pass;
// the overlap is within the BBV pass, not across the two.
//
// Boundaries are derived from the recording alone (CheckpointEvery, or a
// deterministic default from the schedule length), never from the worker
// count — so the profile is invariant across -j widths by construction
// and byte-identical to the serial path by the shard merge rules, both
// pinned by the analyze identity suite.

const (
	// defaultShards is how many shards the recording splits into when
	// CheckpointEvery is unset.
	defaultShards = 16
	// minShardSteps keeps auto-sharding from slicing short recordings
	// into windows smaller than the checkpoint overhead is worth.
	minShardSteps = 4096
)

// shardEvery returns the checkpoint interval: the configured value, or a
// deterministic function of the recording length only.
func shardEvery(cfg *Config, total uint64) uint64 {
	if cfg.CheckpointEvery > 0 {
		return cfg.CheckpointEvery
	}
	every := total / defaultShards
	if every < minShardSteps {
		every = minShardSteps
	}
	return every
}

// analyzeParallel profiles the recording with checkpoint-parallel replay
// shards. Any error (including injected shard faults) makes Analyze fall
// back to analyzeSerial on the same recording; the identity tests call
// this function directly so the fallback can never mask a divergence.
func analyzeParallel(prog *isa.Program, cfg Config, pb *pinball.Pinball) (*Analysis, error) {
	total := pb.Schedule.Steps()
	cks, err := pb.Checkpoints(prog, shardEvery(&cfg, total))
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint sweep of %s: %w", prog.Name, err)
	}
	nshards := len(cks)
	width := func(k int) uint64 {
		if k < nshards-1 {
			return cks[k+1].Step - cks[k].Step
		}
		return total - cks[k].Step
	}
	opts := pool.Options{Width: cfg.AnalyzeWorkers}
	ctx := context.Background()

	// Pass 1: DCFG shards, merged in shard order. The merge must see
	// every shard (carry chaining), so this pass is a barrier.
	shards, _, err := pool.MapWith(ctx, nshards, opts,
		func(ctx context.Context, k int) (*dcfg.ShardBuilder, error) {
			if err := faults.Check("core.analyze.shard"); err != nil {
				return nil, err
			}
			sb := dcfg.NewShardBuilder(prog.NumThreads())
			if _, err := pb.ReplayWindow(prog, cks[k], width(k), sb); err != nil {
				return nil, err
			}
			return sb, nil
		})
	if err != nil {
		return nil, fmt.Errorf("core: DCFG shard replay of %s: %w", prog.Name, err)
	}
	g, err := dcfg.MergeShards(prog, shards)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", prog.Name, err)
	}
	loops := g.FindLoops()
	markers, modulus, err := markersAndModulus(prog, &cfg, pb, g, loops)
	if err != nil {
		return nil, err
	}

	// Pass 2+3: BBV scan and accumulate, pipelined over one pool sweep of
	// 2×nshards items (scans first, then accumulates — the pool claims
	// items in index order). A decider goroutine consumes scans in shard
	// order and publishes each shard's close decisions the moment they
	// are known, so accumulation of shard k needs only scans 0..k, not
	// the whole scan pass.
	scanCh := make([]chan *bbv.ShardScan, nshards)
	decCh := make([]chan []bbv.CloseAt, nshards)
	for k := range scanCh {
		scanCh[k] = make(chan *bbv.ShardScan, 1)
		decCh[k] = make(chan []bbv.CloseAt, 1)
	}
	decider := bbv.NewDecider(sliceTargetFor(prog, &cfg), modulus)
	stop := make(chan struct{})
	deciderDone := make(chan struct{})
	go func() {
		defer close(deciderDone)
		for k := 0; k < nshards; k++ {
			select {
			case sc := <-scanCh[k]:
				if sc == nil {
					return // that scan failed; the pool is cancelling
				}
				decCh[k] <- decider.Feed(sc)
			case <-stop:
				return
			}
		}
	}()

	pieces := make([][]bbv.Piece, nshards)
	_, err = pool.RunWith(ctx, 2*nshards, opts, func(ctx context.Context, i int) error {
		if err := faults.Check("core.analyze.shard"); err != nil {
			if i < nshards {
				scanCh[i] <- nil
			}
			return err
		}
		if i < nshards {
			sc := bbv.NewScanner(markers, cfg.NoSpinFilter)
			if _, err := pb.ReplayWindow(prog, cks[i], width(i), sc); err != nil {
				scanCh[i] <- nil
				return err
			}
			scanCh[i] <- sc.Scan()
			return nil
		}
		k := i - nshards
		var closes []bbv.CloseAt
		select {
		case closes = <-decCh[k]:
		case <-ctx.Done():
			return ctx.Err()
		}
		events := make([]int, len(closes))
		for j, c := range closes {
			events[j] = c.Event
		}
		ac := bbv.NewAccumulator(prog, markers, events, cfg.NoSpinFilter)
		if _, err := pb.ReplayWindow(prog, cks[k], width(k), ac); err != nil {
			return err
		}
		pieces[k] = ac.Pieces()
		return nil
	})
	close(stop)
	<-deciderDone
	if err != nil {
		return nil, fmt.Errorf("core: BBV shard replay of %s: %w", prog.Name, err)
	}

	totFiltered, totICount := decider.Totals()
	prof := bbv.StitchProfile(prog, pieces, decider.Closes(), decider.MarkerCounts(), totFiltered, totICount)
	if len(prof.Regions) == 0 {
		return nil, fmt.Errorf("core: %s produced no regions", prog.Name)
	}
	return &Analysis{
		Prog: prog, Pinball: pb, Graph: g, Loops: loops,
		Markers: markers, Profile: prof, Config: cfg,
	}, nil
}
