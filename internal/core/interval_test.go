package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"looppoint/internal/omp"
	"looppoint/internal/testprog"
	"looppoint/internal/timing"
)

func stratifiedConfig() Config {
	cfg := testConfig()
	cfg.Selector = "stratified"
	cfg.SampleBudget = 16
	return cfg
}

// TestStratifiedRunProducesIntervals runs the full pipeline under the
// stratified engine and requires the report to carry a confidence-
// interval block: default 95% level, Seconds consistent with Cycles
// under the clock rescale, and the interval surfaced in Summary().
func TestStratifiedRunProducesIntervals(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	rep, err := Run(p, stratifiedConfig(), timing.Gainestown(4), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	iv := rep.Intervals
	if iv == nil {
		t.Fatal("stratified run produced no Intervals")
	}
	if iv.Level != 0.95 {
		t.Errorf("Level = %v, want the 0.95 default", iv.Level)
	}
	if iv.Cycles.HalfWidth < 0 || iv.Seconds.HalfWidth < 0 {
		t.Errorf("negative half-widths: %+v", iv)
	}
	hz := timing.Gainestown(4).FreqGHz * 1e9
	if got, want := iv.Seconds.Mean, iv.Cycles.Mean/hz; got != want {
		t.Errorf("Seconds.Mean = %v, want Cycles.Mean/hz = %v", got, want)
	}
	if got, want := iv.Seconds.HalfWidth, iv.Cycles.HalfWidth/hz; got != want {
		t.Errorf("Seconds.HalfWidth = %v, want Cycles.HalfWidth/hz = %v", got, want)
	}
	if s := rep.Summary(); !strings.Contains(s, "% CI") {
		t.Errorf("Summary does not surface the interval: %q", s)
	}
	// The interval's point estimate is the extrapolated prediction: the
	// multipliers encode W_h/(n_h·w_i), so Σ value×multiplier and the
	// stratified estimator agree up to float association.
	if rel := (iv.Cycles.Mean - rep.Predicted.Cycles) / rep.Predicted.Cycles; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("interval mean %v disagrees with extrapolated prediction %v (rel %v)",
			iv.Cycles.Mean, rep.Predicted.Cycles, rel)
	}
}

// TestSimPointRunIntervalsNil pins the point-estimate contract: the
// classic medoid engine draws once per stratum, so no variance is
// estimable and the report must carry a nil Intervals (never a zero-
// width fiction).
func TestSimPointRunIntervalsNil(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	rep, err := Run(p, testConfig(), timing.Gainestown(4), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Intervals != nil {
		t.Fatalf("medoid selection produced Intervals %+v, want nil", rep.Intervals)
	}
	if s := rep.Summary(); strings.Contains(s, "% CI") {
		t.Errorf("Summary claims an interval for a point estimate: %q", s)
	}
}

// TestIntervalsWidthInvariant requires identical interval blocks at
// every region-simulation pool width — scheduling must not leak into
// the stratum grouping or the float accumulation order.
func TestIntervalsWidthInvariant(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	a, err := Analyze(p, stratifiedConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	freq := timing.Gainestown(1).FreqGHz
	base, err := SimulateRegionsN(sel, timing.Gainestown(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := ComputeIntervals(sel, base, freq, 0.95)
	if want == nil {
		t.Fatal("no intervals at width 1")
	}
	for _, width := range []int{2, 8} {
		res, err := SimulateRegionsN(sel, timing.Gainestown(4), width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if got := ComputeIntervals(sel, res, freq, 0.95); !reflect.DeepEqual(got, want) {
			t.Errorf("width %d: intervals differ from width 1:\n%+v\nvs\n%+v", width, got, want)
		}
	}
}

// TestSelectorDefaultIsSimPoint pins Config.Selector's zero value to the
// classic engine: an empty selector must produce the same selection as
// naming "simpoint" explicitly.
func TestSelectorDefaultIsSimPoint(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	run := func(selector string) *Selection {
		cfg := testConfig()
		cfg.Selector = selector
		a, err := Analyze(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := Select(a)
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}
	def, named := run(""), run("simpoint")
	if !reflect.DeepEqual(def.Points, named.Points) {
		t.Error("empty Config.Selector selects differently from \"simpoint\"")
	}
	if def.Engine() != "simpoint" {
		t.Errorf("Engine() = %q", def.Engine())
	}
}

// TestSelectionFileEngineMetadata pins the selection-file compatibility
// contract: simpoint selections serialize without the new engine/draws
// keys (byte-compatible with pre-engine files), while stratified
// selections carry both, and every file round-trips through the
// integrity envelope.
func TestSelectionFileEngineMetadata(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	analyzeSelect := func(cfg Config) *Selection {
		a, err := Analyze(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := Select(a)
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}

	simFile, err := json.Marshal(analyzeSelect(testConfig()).File())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"engine"`, `"draws"`} {
		if bytes.Contains(simFile, []byte(key)) {
			t.Errorf("simpoint selection file contains %s — pre-engine byte-compatibility broken:\n%s", key, simFile)
		}
	}

	stratSel := analyzeSelect(stratifiedConfig())
	stratFile := stratSel.File()
	if stratFile.Engine != "stratified" {
		t.Errorf("stratified selection file engine = %q", stratFile.Engine)
	}
	multiDraw := false
	for _, pt := range stratFile.Points {
		if pt.Draws > 1 {
			multiDraw = true
		}
	}
	if !multiDraw {
		t.Error("stratified selection file records no multi-draw point")
	}

	var buf bytes.Buffer
	if err := stratFile.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSelectionFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Engine != "stratified" || len(loaded.Points) != len(stratFile.Points) {
		t.Errorf("round-trip lost engine metadata: engine %q, %d points", loaded.Engine, len(loaded.Points))
	}
}
