package core

import (
	"bytes"
	"strings"
	"testing"

	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

func TestSelectionFileRoundTrip(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	a, err := Analyze(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	f := sel.File()
	if f.Program != p.Name || f.Threads != 4 || len(f.Points) != len(sel.Points) {
		t.Fatalf("selection file header wrong: %+v", f)
	}

	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSelectionFile(&buf)
	if err != nil {
		t.Fatalf("LoadSelectionFile: %v", err)
	}
	if got.TotalFiltered != f.TotalFiltered || len(got.Points) != len(f.Points) {
		t.Fatal("round trip lost data")
	}
	for i := range f.Points {
		ms, err := got.Points[i].Start.Marker()
		if err != nil {
			t.Fatal(err)
		}
		if ms != sel.Points[i].Region.Start {
			t.Errorf("point %d start marker differs: %v vs %v", i, ms, sel.Points[i].Region.Start)
		}
	}
}

func TestLoadSelectionFileRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":        "nope",
		"empty points":    `{"program":"x","threads":4,"looppoints":[]}`,
		"bad multiplier":  `{"program":"x","threads":4,"looppoints":[{"region":0,"start":{"kind":"start"},"end":{"kind":"end"},"multiplier":0.5}]}`,
		"unknown field":   `{"program":"x","threads":4,"bogus":1,"looppoints":[{"region":0,"start":{"kind":"start"},"end":{"kind":"end"},"multiplier":1}]}`,
		"bad marker kind": `{"program":"x","threads":4,"looppoints":[{"region":0,"start":{"kind":"weird"},"end":{"kind":"end"},"multiplier":1}]}`,
		"mass mismatch":   `{"program":"x","threads":4,"total_filtered_instructions":1000,"looppoints":[{"region":0,"start":{"kind":"start"},"end":{"kind":"end"},"filtered_instructions":10,"multiplier":1}]}`,
	}
	for name, in := range cases {
		if _, err := LoadSelectionFile(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMarkerJSONKinds(t *testing.T) {
	for _, mk := range []struct {
		kind string
		m    MarkerJSON
	}{
		{"start", MarkerJSON{Kind: "start"}},
		{"end", MarkerJSON{Kind: "end"}},
		{"icount", MarkerJSON{Kind: "icount", Count: 42}},
		{"pc", MarkerJSON{PC: 0x100, Count: 7}},
	} {
		m, err := mk.m.Marker()
		if err != nil {
			t.Fatalf("%s: %v", mk.kind, err)
		}
		if back := toMarkerJSON(m); back != mk.m {
			t.Errorf("%s: round trip %+v -> %+v", mk.kind, mk.m, back)
		}
	}
}
