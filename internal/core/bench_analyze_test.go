package core

import (
	"runtime"
	"testing"

	"looppoint/internal/exec"
	"looppoint/internal/isa"
	"looppoint/internal/omp"
	"looppoint/internal/pinball"
	"looppoint/internal/testprog"
)

// make bench-analyze runs these with -cpu 1,2,4,8: the parallel
// benchmark sets AnalyzeWorkers to GOMAXPROCS, so the -cpu axis is the
// worker-count axis. On a single-CPU host the parallel numbers measure
// oversubscription overhead, not speedup — BENCH_analyze.json records
// which kind of host produced it. The recording happens once outside
// the timed loop; both benchmarks profile the same pinball.

func benchAnalyzeSetup(b *testing.B) (Config, *isa.Program, *pinball.Pinball) {
	b.Helper()
	p := testprog.Phased(4, 24, 400, omp.Passive)
	cfg := testConfig()
	cfg.fill()
	pb, err := pinball.RecordWithOptions(p, cfg.Seed, exec.RunOpts{
		FlowWindow: cfg.FlowWindow, QuantumBias: cfg.HostBias,
	})
	if err != nil {
		b.Fatal(err)
	}
	return cfg, p, pb
}

func BenchmarkAnalyzeSerial(b *testing.B) {
	cfg, p, pb := benchAnalyzeSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyzeSerial(p, cfg, pb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeParallel(b *testing.B) {
	cfg, p, pb := benchAnalyzeSetup(b)
	cfg.AnalyzeWorkers = runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyzeParallel(p, cfg, pb); err != nil {
			b.Fatal(err)
		}
	}
}
