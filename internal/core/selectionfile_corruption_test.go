package core

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"looppoint/internal/artifact"
	"looppoint/internal/faults"
	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

// typedArtifactErr reports whether err wraps one of the artifact
// sentinels.
func typedArtifactErr(err error) bool {
	return errors.Is(err, artifact.ErrCorrupt) ||
		errors.Is(err, artifact.ErrTruncated) ||
		errors.Is(err, artifact.ErrVersion)
}

// savedSelectionBytes analyzes a small program and returns its written
// selection file (v2 envelope).
func savedSelectionBytes(t *testing.T) []byte {
	t.Helper()
	p := testprog.Phased(4, 10, 150, omp.Passive)
	a, err := Analyze(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sel.File().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSelectionEnvelopeShape: the written file is the v2 envelope, and
// it loads back.
func TestSelectionEnvelopeShape(t *testing.T) {
	data := savedSelectionBytes(t)
	for _, want := range []string{`"format": "looppoint-selection"`, `"version": 2`, `"fnv1a": "0x`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("envelope missing %s", want)
		}
	}
	if _, err := LoadSelectionFile(bytes.NewReader(data)); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

// TestSelectionCorruptionMatrixBitFlips flips one bit at every byte of a
// written selection file — envelope keys, checksum, payload, whitespace,
// trailing newline — and asserts each flip is rejected with a typed
// artifact error.
func TestSelectionCorruptionMatrixBitFlips(t *testing.T) {
	orig := savedSelectionBytes(t)
	for off := 0; off < len(orig); off++ {
		for _, bit := range []byte{0x01, 0x10} {
			data := append([]byte(nil), orig...)
			data[off] ^= bit
			_, err := LoadSelectionFile(bytes.NewReader(data))
			if err == nil {
				t.Fatalf("bit flip 0x%02x at byte %d (%q) accepted", bit, off, orig[off])
			}
			if !typedArtifactErr(err) {
				t.Fatalf("bit flip 0x%02x at byte %d: untyped error %v", bit, off, err)
			}
		}
	}
}

// TestSelectionCorruptionMatrixTruncation cuts the file at every prefix
// and asserts a typed error — ErrTruncated once the envelope has begun.
// Cuts that only strip trailing whitespace are skipped: the JSON value is
// still complete and the checksum still validates, so nothing is lost.
func TestSelectionCorruptionMatrixTruncation(t *testing.T) {
	orig := savedSelectionBytes(t)
	body := len(bytes.TrimRight(orig, " \t\r\n"))
	for cut := 0; cut < body; cut++ {
		_, err := LoadSelectionFile(bytes.NewReader(orig[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
		if !typedArtifactErr(err) {
			t.Fatalf("truncation at %d bytes: untyped error %v", cut, err)
		}
	}
}

// TestSelectionVersionSkew: a bumped envelope version is ErrVersion.
func TestSelectionVersionSkew(t *testing.T) {
	data := savedSelectionBytes(t)
	skewed := strings.Replace(string(data), `"version": 2`, `"version": 9`, 1)
	if skewed == string(data) {
		t.Fatal("version field not found")
	}
	if _, err := LoadSelectionFile(strings.NewReader(skewed)); !errors.Is(err, artifact.ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

// TestSelectionLegacyFormatAccepted: pre-envelope bare selection JSON
// still loads (checkpoint directories written by older builds).
func TestSelectionLegacyFormatAccepted(t *testing.T) {
	legacy := `{"program":"x","threads":4,"total_filtered_instructions":100,
		"looppoints":[{"region":0,"start":{"kind":"start"},"end":{"kind":"end"},
		"filtered_instructions":100,"multiplier":1}]}`
	f, err := LoadSelectionFile(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy file rejected: %v", err)
	}
	if f.Program != "x" || len(f.Points) != 1 {
		t.Fatalf("legacy decode wrong: %+v", f)
	}
}

// TestSelectionSaveCorruptionFaultCaught: a torn write injected at
// "core.selection.save" is caught on load.
func TestSelectionSaveCorruptionFaultCaught(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	a, err := Analyze(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	seed := faults.SeedFromEnv(5)
	defer faults.Enable(faults.NewPlan(seed,
		faults.Rule{Site: "core.selection.save", Kind: faults.Corrupt, Rate: 1, Count: 1}))()
	path := t.TempDir() + "/sel.json"
	if err := sel.File().SaveJSON(path); err != nil {
		t.Fatalf("SaveJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSelectionFile(bytes.NewReader(data)); !typedArtifactErr(err) {
		t.Fatalf("load of torn selection: err = %v, want typed artifact error", err)
	}
}
