package core

import (
	"testing"

	"looppoint/internal/omp"
	"looppoint/internal/testprog"
	"looppoint/internal/timing"
)

// TestSimulateRegionsWidthInvariant requires identical per-region
// statistics and an identical extrapolated prediction at every pool
// width: each region gets its own simulator seeded the same way, so
// worker scheduling must not leak into the results.
func TestSimulateRegionsWidthInvariant(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	a, err := Analyze(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	freq := timing.Gainestown(1).FreqGHz
	base, err := SimulateRegionsN(sel, timing.Gainestown(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	basePred := Extrapolate(base, freq)
	for _, width := range []int{2, 8} {
		res, err := SimulateRegionsN(sel, timing.Gainestown(4), width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if len(res) != len(base) {
			t.Fatalf("width %d: %d results, want %d", width, len(res), len(base))
		}
		for i := range res {
			if res[i].Point.Region.Index != base[i].Point.Region.Index {
				t.Errorf("width %d: result %d is region %d, want %d (ordering unstable)",
					width, i, res[i].Point.Region.Index, base[i].Point.Region.Index)
			}
			if res[i].Stats.Cycles != base[i].Stats.Cycles ||
				res[i].Stats.Instructions != base[i].Stats.Instructions ||
				res[i].Stats.BranchMisses != base[i].Stats.BranchMisses {
				t.Errorf("width %d: region %d stats differ from width 1", width, i)
			}
		}
		if pred := Extrapolate(res, freq); pred != basePred {
			t.Errorf("width %d: prediction differs from width 1:\n%+v\nvs\n%+v",
				width, pred, basePred)
		}
	}
}
