package core

import (
	"reflect"
	"testing"

	"looppoint/internal/omp"
	"looppoint/internal/testprog"
	"looppoint/internal/timing"
)

// TestSimulateRegionsWidthInvariant requires identical per-region
// statistics and an identical extrapolated prediction at every pool
// width: each region gets its own simulator seeded the same way, so
// worker scheduling must not leak into the results.
func TestSimulateRegionsWidthInvariant(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	a, err := Analyze(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	freq := timing.Gainestown(1).FreqGHz
	base, err := SimulateRegionsN(sel, timing.Gainestown(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	basePred := Extrapolate(base, freq)
	for _, width := range []int{2, 4, 8} {
		res, err := SimulateRegionsN(sel, timing.Gainestown(4), width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if len(res) != len(base) {
			t.Fatalf("width %d: %d results, want %d", width, len(res), len(base))
		}
		for i := range res {
			if res[i].Point.Region.Index != base[i].Point.Region.Index {
				t.Errorf("width %d: result %d is region %d, want %d (ordering unstable)",
					width, i, res[i].Point.Region.Index, base[i].Point.Region.Index)
			}
			// Full deep equality: the simulator-arena reuse path must
			// leave no residue regardless of which worker simulated which
			// region, so every counter — not just the headline three —
			// must match the width-1 sweep bit-for-bit.
			if !reflect.DeepEqual(res[i].Stats, base[i].Stats) {
				t.Errorf("width %d: region %d stats differ from width 1:\n%+v\nvs\n%+v",
					width, i, res[i].Stats, base[i].Stats)
			}
		}
		if pred := Extrapolate(res, freq); pred != basePred {
			t.Errorf("width %d: prediction differs from width 1:\n%+v\nvs\n%+v",
				width, pred, basePred)
		}
	}
}

// TestSelectClusterWorkersInvariant requires the clustering stage — BBV
// projection and the parallel k=1..maxK BIC sweep — to produce an
// identical selection at every worker width: per-k seeding is fixed and
// attempts are gathered by k, so pool scheduling must not leak into the
// chosen k, the assignments, or the multipliers.
func TestSelectClusterWorkersInvariant(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	base := func() *Selection {
		cfg := testConfig()
		cfg.ClusterWorkers = 1
		a, err := Analyze(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := Select(a)
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}()
	for _, workers := range []int{2, 8} {
		cfg := testConfig()
		cfg.ClusterWorkers = workers
		a, err := Analyze(p, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sel, err := Select(a)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base.Result, sel.Result) {
			t.Errorf("workers=%d: clustering Result differs from workers=1", workers)
		}
		if !reflect.DeepEqual(base.Points, sel.Points) {
			t.Errorf("workers=%d: looppoint selection differs from workers=1", workers)
		}
	}
}

// TestFastSlowPathsByteIdentical runs the entire methodology — analysis,
// clustering, checkpoint extraction, region simulation, extrapolation —
// once on the block-batched fast path and once on the per-instruction
// reference engine, and requires every model-derived artifact to be
// byte-identical: BBV profiles, marker sets, looppoint selections,
// per-region statistics, and the final prediction. Host time is the only
// thing the fast path is allowed to change.
func TestFastSlowPathsByteIdentical(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)

	run := func(slow bool) (*Analysis, *Selection, []RegionResult, Prediction) {
		cfg := testConfig()
		cfg.SlowPath = slow
		a, err := Analyze(p, cfg)
		if err != nil {
			t.Fatalf("Analyze(slow=%v): %v", slow, err)
		}
		sel, err := Select(a)
		if err != nil {
			t.Fatalf("Select(slow=%v): %v", slow, err)
		}
		res, err := SimulateRegionsN(sel, timing.Gainestown(4), 4)
		if err != nil {
			t.Fatalf("SimulateRegionsN(slow=%v): %v", slow, err)
		}
		return a, sel, res, Extrapolate(res, timing.Gainestown(1).FreqGHz)
	}

	fa, fsel, fres, fpred := run(false)
	sa, ssel, sres, spred := run(true)

	if !reflect.DeepEqual(fa.Markers, sa.Markers) {
		t.Errorf("marker sets differ:\nfast: %#x\nslow: %#x", fa.Markers, sa.Markers)
	}
	if !reflect.DeepEqual(fa.Profile, sa.Profile) {
		t.Error("BBV profiles differ between fast and slow paths")
	}
	if !reflect.DeepEqual(fsel.Points, ssel.Points) {
		t.Error("looppoint selections differ between fast and slow paths")
	}
	if len(fres) != len(sres) {
		t.Fatalf("result counts differ: %d vs %d", len(fres), len(sres))
	}
	for i := range fres {
		if !reflect.DeepEqual(fres[i].Stats, sres[i].Stats) {
			t.Errorf("region %d stats differ:\nfast: %+v\nslow: %+v",
				fres[i].Point.Region.Index, fres[i].Stats, sres[i].Stats)
		}
	}
	if fpred != spred {
		t.Errorf("predictions differ:\nfast: %+v\nslow: %+v", fpred, spred)
	}
}
