package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"looppoint/internal/artifact"
	"looppoint/internal/dcfg"
	"looppoint/internal/faults"
	"looppoint/internal/isa"
	"looppoint/internal/omp"
	"looppoint/internal/pinball"
	"looppoint/internal/testprog"
	"looppoint/internal/timing"
)

// durableConfig is testConfig with durable progress aimed at dir and a
// fresh stats sink.
func durableConfig(dir string) Config {
	cfg := testConfig()
	cfg.ProgressDir = dir
	cfg.ProgressEvery = 2048
	cfg.ProgressKey = "job"
	cfg.Progress = &ProgressStats{}
	return cfg
}

// progressFiles lists the job's epoch files in dir.
func progressFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".progress") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	return files
}

// TestAnalyzeDurableIdentity pins the crash-only pipeline's profile
// byte-identical to the serial reference at several epoch widths,
// including a width wider than the whole recording.
func TestAnalyzeDurableIdentity(t *testing.T) {
	for name, p := range parallelTestPrograms() {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			cfg.fill()
			pb := recordFor(t, p, cfg)
			want, err := analyzeSerial(p, cfg, pb)
			if err != nil {
				t.Fatal(err)
			}
			total := pb.Schedule.Steps()
			for _, every := range []uint64{0, 512, total / 3, total + 1000} {
				dcfg := durableConfig(t.TempDir())
				dcfg.fill()
				dcfg.ProgressEvery = every
				got, err := analyzeDurable(p, dcfg)
				if err != nil {
					t.Fatalf("every=%d: %v", every, err)
				}
				analysisEquals(t, name, got, want)
				saves, fails, recov, _, _ := dcfg.Progress.Snapshot()
				if saves == 0 || fails != 0 || recov != 0 {
					t.Fatalf("every=%d: saves=%d fails=%d recoveries=%d on a clean run", every, saves, fails, recov)
				}
			}
		})
	}
}

// crashAnalyze runs the durable analysis with a one-shot Panic armed at
// the save site — the in-process stand-in for SIGKILL mid-job — and
// reports whether the "kill" fired. Progress written before the kill
// stays durable; the epoch being saved when the kill lands is lost,
// exactly like a real torn run.
func crashAnalyze(t *testing.T, p *isa.Program, cfg Config, after uint64) (killed bool) {
	t.Helper()
	plan := faults.NewPlan(faults.SeedFromEnv(7),
		faults.Rule{Site: "core.progress.save", Kind: faults.Panic, Rate: 1, Count: 1, After: after})
	defer faults.Enable(plan)()
	defer func() {
		switch r := recover().(type) {
		case nil:
		case *faults.Fault:
			killed = true
		default:
			panic(r)
		}
	}()
	if _, err := analyzeDurable(p, cfg); err != nil {
		t.Fatalf("durable analysis died before the kill: %v", err)
	}
	return killed
}

// TestAnalyzeDurableResumeAfterKill is the chaos drill: kill the worker
// at several points of both analysis phases, restart it cold, and
// require the resumed run to (a) skip re-replaying the durable prefix
// (recovery_steps_saved > 0) and (b) produce an analysis byte-identical
// to the uninterrupted serial reference.
func TestAnalyzeDurableResumeAfterKill(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	cfg := testConfig()
	cfg.fill()
	pb := recordFor(t, p, cfg)
	want, err := analyzeSerial(p, cfg, pb)
	if err != nil {
		t.Fatal(err)
	}

	// Count the clean run's saves so kill positions can target the
	// start, the middle (straddling the phase boundary), and the tail.
	probe := durableConfig(t.TempDir())
	probe.fill()
	if _, err := analyzeDurable(p, probe); err != nil {
		t.Fatal(err)
	}
	saves, _, _, _, _ := probe.Progress.Snapshot()
	if saves < 4 {
		t.Fatalf("only %d epoch saves; recording too short for the drill", saves)
	}

	for _, after := range []uint64{1, saves / 2, saves - 2} {
		dir := t.TempDir()
		cfg := durableConfig(dir)
		cfg.fill()
		if !crashAnalyze(t, p, cfg, after) {
			t.Fatalf("kill after %d saves never fired", after)
		}
		if len(progressFiles(t, dir)) == 0 {
			t.Fatalf("kill after %d saves left no durable progress", after)
		}

		// Cold restart: fresh stats, no faults.
		cfg.Progress = &ProgressStats{}
		got, err := analyzeDurable(p, cfg)
		if err != nil {
			t.Fatalf("restart after kill@%d: %v", after, err)
		}
		analysisEquals(t, "resumed", got, want)
		_, _, recoveries, stepsSaved, _ := cfg.Progress.Snapshot()
		if recoveries != 1 {
			t.Fatalf("kill@%d: %d recoveries, want 1", after, recoveries)
		}
		if stepsSaved == 0 {
			t.Fatalf("kill@%d: recovery saved no steps", after)
		}
	}
}

// TestAnalyzeDurableCorruptLadderFalls: with the newest epoch file
// bit-flipped and a stray temp file in the directory, the restart falls
// one rung down the ladder, resumes from the older epoch, and still
// reproduces the reference analysis. With every rung corrupted it
// restarts from step 0 — corruption never wedges or poisons a job.
func TestAnalyzeDurableCorruptLadderFalls(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	cfg := testConfig()
	cfg.fill()
	pb := recordFor(t, p, cfg)
	want, err := analyzeSerial(p, cfg, pb)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	dcfg := durableConfig(dir)
	dcfg.fill()
	if !crashAnalyze(t, p, dcfg, 5) {
		t.Fatal("kill never fired")
	}
	files := progressFiles(t, dir)
	if len(files) != progressRetain {
		t.Fatalf("%d retained epoch files, want %d", len(files), progressRetain)
	}

	// Corrupt the newest rung; leave a stray temp file (the crash-
	// between-write-and-rename artifact) that loaders must ignore.
	newest := files[len(files)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest+".tmp123", []byte("torn temp write"), 0o644); err != nil {
		t.Fatal(err)
	}

	dcfg.Progress = &ProgressStats{}
	got, err := analyzeDurable(p, dcfg)
	if err != nil {
		t.Fatalf("restart over corrupt rung: %v", err)
	}
	analysisEquals(t, "ladder-fall resume", got, want)
	_, _, recoveries, _, falls := dcfg.Progress.Snapshot()
	if falls < 1 {
		t.Fatalf("%d ladder falls, want >= 1", falls)
	}
	if recoveries != 1 {
		t.Fatalf("%d recoveries, want 1 (from the older rung)", recoveries)
	}
	if _, err := os.Stat(newest); !os.IsNotExist(err) {
		t.Fatalf("corrupt rung %s not quarantined", newest)
	}

	// Corrupt every remaining rung: restart must fall to step 0 and
	// still match.
	for _, f := range progressFiles(t, dir) {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-3] ^= 0x80
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	dcfg.Progress = &ProgressStats{}
	got, err = analyzeDurable(p, dcfg)
	if err != nil {
		t.Fatalf("restart from zero: %v", err)
	}
	analysisEquals(t, "restart-from-zero", got, want)
	_, _, recoveries, _, _ = dcfg.Progress.Snapshot()
	if recoveries != 0 {
		t.Fatalf("%d recoveries with every rung corrupt, want 0", recoveries)
	}
}

// TestAnalyzeDurableSaveFaultNonFatal: every save failing (injected
// Transient) costs resumability, never the analysis itself.
func TestAnalyzeDurableSaveFaultNonFatal(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	cfg := testConfig()
	cfg.fill()
	pb := recordFor(t, p, cfg)
	want, err := analyzeSerial(p, cfg, pb)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dcfg := durableConfig(dir)
	dcfg.fill()
	defer faults.Enable(faults.NewPlan(faults.SeedFromEnv(3),
		faults.Rule{Site: "core.progress.save", Kind: faults.Transient, Rate: 1}))()
	got, err := analyzeDurable(p, dcfg)
	if err != nil {
		t.Fatalf("analysis failed under save faults: %v", err)
	}
	analysisEquals(t, "save-faulted", got, want)
	saves, fails, _, _, _ := dcfg.Progress.Snapshot()
	if saves != 0 || fails == 0 {
		t.Fatalf("saves=%d fails=%d under a Rate-1 Transient", saves, fails)
	}
	if n := len(progressFiles(t, dir)); n != 0 {
		t.Fatalf("%d progress files written despite save faults", n)
	}
}

// TestAnalyzeDurableLoadFaultFallsToZero: transient load faults on every
// rung mean no recovery — but the rungs are NOT quarantined (the bytes
// were never proven bad), and the job completes from step 0.
func TestAnalyzeDurableLoadFaultFallsToZero(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.fill()
	if !crashAnalyze(t, p, cfg, 4) {
		t.Fatal("kill never fired")
	}
	before := len(progressFiles(t, dir))
	if before == 0 {
		t.Fatal("no durable progress to fault")
	}
	cfg.Progress = &ProgressStats{}
	restore := faults.Enable(faults.NewPlan(faults.SeedFromEnv(3),
		faults.Rule{Site: "core.progress.load", Kind: faults.Transient, Rate: 1}))
	_, err := analyzeDurable(p, cfg)
	restore()
	if err != nil {
		t.Fatalf("analysis failed under load faults: %v", err)
	}
	_, _, recoveries, _, falls := cfg.Progress.Snapshot()
	if recoveries != 0 || falls < uint64(before) {
		t.Fatalf("recoveries=%d falls=%d under Rate-1 load faults over %d rungs", recoveries, falls, before)
	}
}

// partialMerge replays the whole recording through one shard builder
// and merges it into an empty graph — a genuine mid-analysis graph and
// carry for the envelope matrix tests.
func partialMerge(p *isa.Program, pb *pinball.Pinball) (*dcfg.Graph, dcfg.Carry, error) {
	sb := dcfg.NewShardBuilder(p.NumThreads())
	if _, err := pb.ReplayWindow(p, pb.StartCheckpoint(), pb.Schedule.Steps(), sb); err != nil {
		return nil, dcfg.Carry{}, err
	}
	g := dcfg.NewGraph(p)
	carry, err := sb.MergeInto(g, dcfg.StartCarry(p.NumThreads()))
	if err != nil {
		return nil, dcfg.Carry{}, err
	}
	return g, carry, nil
}

// TestProgressEnvelopeTruncation: a truncation at any 8-byte boundary
// (and at the raw tail) classifies as ErrTruncated with a byte offset,
// never a panic or a silent success.
func TestProgressEnvelopeTruncation(t *testing.T) {
	data := buildProgressEnvelope(t)
	for cut := 0; cut < len(data); cut += 8 {
		if _, _, err := decodeProgress(data[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(data))
		} else if !errors.Is(err, artifact.ErrTruncated) && !errors.Is(err, artifact.ErrCorrupt) {
			t.Fatalf("truncation at %d: wrong class %v", cut, err)
		}
	}
	if _, _, err := decodeProgress(data[:len(data)-1]); !errors.Is(err, artifact.ErrTruncated) && !errors.Is(err, artifact.ErrCorrupt) {
		t.Fatalf("tail truncation: wrong class %v", err)
	}
	if _, _, err := decodeProgress(data); err != nil {
		t.Fatalf("pristine envelope rejected: %v", err)
	}
}

// TestProgressEnvelopeCorruptFlips: single-bit flips across the file —
// sampled at a prime stride plus both edges — always classify into the
// artifact sentinels.
func TestProgressEnvelopeCorruptFlips(t *testing.T) {
	data := buildProgressEnvelope(t)
	offsets := []int{0, 1, 7, 8, 15, len(data) - 2, len(data) - 1}
	for off := 16; off < len(data); off += 251 {
		offsets = append(offsets, off)
	}
	for _, off := range offsets {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		_, _, err := decodeProgress(mut)
		if err == nil {
			t.Fatalf("bit flip at %d accepted", off)
		}
		if !errors.Is(err, artifact.ErrCorrupt) && !errors.Is(err, artifact.ErrTruncated) && !errors.Is(err, artifact.ErrVersion) {
			t.Fatalf("bit flip at %d: unclassified error %v", off, err)
		}
	}
}

// TestProgressEnvelopeVersionSkew: a future format version (with a
// recomputed valid checksum) classifies as ErrVersion.
func TestProgressEnvelopeVersionSkew(t *testing.T) {
	data := buildProgressEnvelope(t)
	mut := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(mut[len(progMagic):], progressVersion+1)
	sum := artifact.Update(artifact.FNVOffset, mut[len(progMagic):len(mut)-8])
	binary.LittleEndian.PutUint64(mut[len(mut)-8:], sum)
	if _, _, err := decodeProgress(mut); !errors.Is(err, artifact.ErrVersion) {
		t.Fatalf("version skew classified as %v, want ErrVersion", err)
	}
}

// buildProgressEnvelope encodes a genuine mid-phase-0 progress file from
// a short recording.
func buildProgressEnvelope(t *testing.T) []byte {
	t.Helper()
	p := testprog.Phased(2, 3, 30, omp.Passive)
	cfg := testConfig()
	cfg.fill()
	pb := recordFor(t, p, cfg)
	g, carry, err := partialMerge(p, pb)
	if err != nil {
		t.Fatal(err)
	}
	cs := carry.State()
	data, err := encodeProgress(pb.StartCheckpoint(), &progressState{
		Key: "job", Fingerprint: "fp", Epoch: 3, Phase: 0,
		Total: pb.Schedule.Steps(), Every: 64, Graph: g.State(), Carry: &cs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSimulateRegionsResumeFromJournal: a sweep journals every region;
// a restarted sweep serves all of them from the journal — proven by
// arming a Rate-1 fault at the simulation site, which recovered regions
// never reach — with identical results including recorded host times.
func TestSimulateRegionsResumeFromJournal(t *testing.T) {
	dir := t.TempDir()
	p := testprog.Phased(4, 10, 150, omp.Passive)
	cfg := durableConfig(dir)
	a, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	first, err := SimulateRegionsN(sel, timing.Gainestown(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	saves1, _, _, _, _ := cfg.Progress.Snapshot()

	// Every fresh simulation would fail — recovered regions never
	// simulate, so an error-free identical sweep proves full recovery.
	defer faults.Enable(faults.NewPlan(faults.SeedFromEnv(2),
		faults.Rule{Site: "core.region.sim", Kind: faults.Transient, Rate: 1}))()
	second, err := SimulateRegionsN(sel, timing.Gainestown(4), 2)
	if err != nil {
		t.Fatalf("journal-resumed sweep failed: %v", err)
	}
	if !reflect.DeepEqual(second, first) {
		t.Fatal("journal-resumed results differ from the original sweep")
	}
	saves2, _, recoveries, stepsSaved, _ := cfg.Progress.Snapshot()
	if recoveries == 0 || stepsSaved == 0 {
		t.Fatalf("recoveries=%d stepsSaved=%d after journal resume", recoveries, stepsSaved)
	}
	if saves2 != saves1 {
		t.Fatalf("journal grew on a fully recovered sweep (%d -> %d saves)", saves1, saves2)
	}
}

// TestSimProgressCorruptLineResimulated: a corrupted journal line drops
// its region from recovery; the restarted sweep re-simulates exactly
// that region and the statistics still match end to end.
func TestSimProgressCorruptLineResimulated(t *testing.T) {
	dir := t.TempDir()
	p := testprog.Phased(4, 10, 150, omp.Passive)
	cfg := durableConfig(dir)
	a, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	first, err := SimulateRegionsN(sel, timing.Gainestown(4), 1)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the first journal line's record.
	var simPath string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".sim.progress") {
			simPath = filepath.Join(dir, e.Name())
		}
	}
	if simPath == "" {
		t.Fatal("no sim journal written")
	}
	data, err := os.ReadFile(simPath)
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 2 {
		t.Fatal("journal has no complete line")
	}
	data[nl/2] ^= 0x04
	if err := os.WriteFile(simPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	second, err := SimulateRegionsN(sel, timing.Gainestown(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != len(first) {
		t.Fatalf("%d results after corrupt line, want %d", len(second), len(first))
	}
	for i := range first {
		if !reflect.DeepEqual(second[i].Stats, first[i].Stats) {
			t.Fatalf("region %d stats differ after journal corruption", i)
		}
	}
}

// TestSimulateRegionsResumePartialDegraded: a degraded sweep that loses
// regions journals only the survivors; the clean restart re-simulates
// just the losses and matches the never-faulted reference.
func TestSimulateRegionsResumePartialDegraded(t *testing.T) {
	dir := t.TempDir()
	p := testprog.Phased(4, 10, 150, omp.Passive)
	cfg := durableConfig(dir)
	a, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := SimulateRegionsN(sel, timing.Gainestown(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Wipe the journal the reference sweep just wrote: the degraded
	// sweep below must start cold to lose anything.
	for _, f := range simJournals(t, dir) {
		os.Remove(f)
	}

	restore := faults.Enable(faults.NewPlan(faults.SeedFromEnv(4),
		faults.Rule{Site: "core.region.sim", Kind: faults.Transient, Rate: 1, Count: 1}))
	partial, deg, err := SimulateRegionsOpt(sel, timing.Gainestown(4), SimOpts{
		Width: 1, Degraded: true, MinCoverage: 0.01,
	})
	restore()
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded() || len(partial) >= len(sel.Points) {
		t.Fatalf("fault did not degrade the sweep (%d of %d survived)", len(partial), len(sel.Points))
	}

	full, err := SimulateRegionsN(sel, timing.Gainestown(4), 1)
	if err != nil {
		t.Fatalf("restart after degraded sweep: %v", err)
	}
	for i := range reference {
		if !reflect.DeepEqual(full[i].Stats, reference[i].Stats) {
			t.Fatalf("region %d stats differ after partial resume", i)
		}
	}
}

func simJournals(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".sim.progress") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	return files
}
