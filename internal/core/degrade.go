package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"looppoint/internal/faults"
	"looppoint/internal/isa"
	"looppoint/internal/pinball"
	"looppoint/internal/pool"
	"looppoint/internal/timing"
)

// ErrLowCoverage reports that too much of the selection's work mass was
// lost to failed region simulations for the extrapolation to be
// trustworthy.
var ErrLowCoverage = errors.New("core: residual coverage below threshold")

// DefaultMinCoverage is the default residual-coverage floor for degraded
// simulation: losing more than 10% of the selection's extrapolation
// weight fails the run rather than silently reporting a reweighted
// estimate.
const DefaultMinCoverage = 0.9

// RegionFailure records one looppoint whose simulation failed after its
// attempt budget. Err is a string, not an error, so failures serialize
// cleanly into the harness resume journal.
type RegionFailure struct {
	// Region is the failed looppoint's region index.
	Region int `json:"region"`
	// Err is the final attempt's error text.
	Err string `json:"err"`
	// Weight is the share of the selection's extrapolation mass
	// (multiplier × filtered work) this looppoint carried.
	Weight float64 `json:"weight"`
}

// Degradation summarizes what a degraded-mode simulation lost: which
// regions failed and how much extrapolation weight survives. A nil or
// empty Degradation means the run was complete.
type Degradation struct {
	Failed []RegionFailure `json:"failed"`
	// ResidualCoverage is the surviving share of the selection's
	// extrapolation mass, in (0, 1]; 1 means nothing was lost.
	ResidualCoverage float64 `json:"residual_coverage"`
}

// Degraded reports whether any region was lost.
func (d *Degradation) Degraded() bool { return d != nil && len(d.Failed) > 0 }

// Summary renders the degradation for reports.
func (d *Degradation) Summary() string {
	if !d.Degraded() {
		return "complete"
	}
	return fmt.Sprintf("%d region(s) lost, residual coverage %.1f%%",
		len(d.Failed), d.ResidualCoverage*100)
}

// SimOpts controls a fault-tolerant region-simulation sweep.
type SimOpts struct {
	// Width bounds concurrent region simulations (<= 0: one per CPU).
	Width int
	// Degraded enables collect-what-you-can mode: a region that still
	// fails after its attempt budget is dropped and recorded instead of
	// aborting the sweep.
	Degraded bool
	// Attempts is the per-region attempt budget (<= 1: single attempt).
	Attempts int
	// RegionTimeout bounds each simulation attempt (0: none).
	RegionTimeout time.Duration
	// MinCoverage is the residual-coverage floor in degraded mode.
	// Falling below it returns ErrLowCoverage. Zero means
	// DefaultMinCoverage; a negative value disables the floor entirely
	// (any surviving coverage is accepted).
	MinCoverage float64
}

// extractCheckpoints performs the one-sweep region-pinball extraction for
// checkpoint-driven simulation (nil for binary-driven mode).
func extractCheckpoints(sel *Selection) ([]*pinball.Pinball, error) {
	a := sel.Analysis
	if a.Config.RegionSim != RegionSimCheckpoint {
		return nil, nil
	}
	warmupRegions := a.Config.WarmupRegions
	if warmupRegions <= 0 {
		warmupRegions = 1
	}
	specs := make([]pinball.RegionSpec, len(sel.Points))
	for i, lp := range sel.Points {
		r := lp.Region
		warmStart := r.StartICount
		if a.Config.Warmup == timing.WarmupFunctional {
			back := r.Index - warmupRegions
			if back < 0 {
				back = 0
			}
			warmStart = a.Profile.Regions[back].StartICount
		}
		specs[i] = pinball.RegionSpec{
			Name:            fmt.Sprintf("%s.r%d", a.Prog.Name, r.Index),
			WarmupStartStep: warmStart,
			StartStep:       r.StartICount,
			EndStep:         r.EndICount,
			Start:           r.Start,
			End:             r.End,
		}
	}
	checkpoints, err := a.Pinball.ExtractRegions(a.Prog, specs)
	if err != nil {
		return nil, fmt.Errorf("core: extracting region pinballs: %w", err)
	}
	return checkpoints, nil
}

// simulatorArena recycles timing.Simulators across the regions of one
// sweep: a worker's first region pays the allocation wave (cache
// backing arrays, predictor tables, directory maps); later regions
// clear and reuse it via timing.Simulator.Reset. The identity tests pin
// reused-simulator reports byte-identical to fresh construction, so the
// sweep's results are independent of which worker simulated which
// region at which width.
type simulatorArena struct {
	pool sync.Pool
	cfg  timing.Config
}

func (ar *simulatorArena) get(prog *isa.Program) (*timing.Simulator, error) {
	if v := ar.pool.Get(); v != nil {
		sim := v.(*timing.Simulator)
		if err := sim.Reset(prog); err == nil {
			return sim, nil
		}
		// A simulator that fails revalidation (config mutated somehow) is
		// dropped; fall through to fresh construction.
	}
	return timing.New(ar.cfg, prog)
}

func (ar *simulatorArena) put(sim *timing.Simulator) { ar.pool.Put(sim) }

// simulateOneRegion runs one looppoint's detailed simulation. Injection
// site "core.region.sim" can force transient failures, slow calls, or
// panics here — the unit of failure the degraded mode tolerates. The
// simulation kernel itself is CPU-bound and does not poll ctx; the
// entry check plus the pool's per-item claim check are what make a
// cancelled sweep stop at region boundaries.
func simulateOneRegion(ctx context.Context, sel *Selection, arena *simulatorArena, checkpoints []*pinball.Pinball, i int) (RegionResult, error) {
	if err := ctx.Err(); err != nil {
		return RegionResult{}, err
	}
	if err := faults.Check("core.region.sim"); err != nil {
		return RegionResult{}, err
	}
	a := sel.Analysis
	lp := sel.Points[i]
	start := time.Now()
	sim, err := arena.get(a.Prog)
	if err != nil {
		return RegionResult{}, err
	}
	defer arena.put(sim)
	sim.Seed = a.Config.Seed
	sim.SlowPath = a.Config.SlowPath
	var st *timing.Stats
	if checkpoints != nil {
		st, err = sim.SimulateCheckpoint(checkpoints[i])
	} else {
		st, err = sim.SimulateRegion(lp.Region.Start, lp.Region.End, a.Config.Warmup)
	}
	if err != nil {
		return RegionResult{}, fmt.Errorf("core: region %d: %w", lp.Region.Index, err)
	}
	return RegionResult{Point: lp, Stats: st, HostTime: time.Since(start)}, nil
}

// SimulateRegionsOpt is the fault-tolerant region-simulation sweep. In
// strict mode (Degraded false) it behaves like SimulateRegionsN — the
// first failure (after any per-region retries) aborts the sweep — and the
// returned Degradation is nil. In degraded mode every region gets its
// attempt budget; regions that still fail are dropped, their loss is
// recorded in the returned Degradation, and the surviving results are
// returned in region order. If the surviving extrapolation mass falls
// below MinCoverage the sweep fails with ErrLowCoverage.
func SimulateRegionsOpt(sel *Selection, simCfg timing.Config, opts SimOpts) ([]RegionResult, *Degradation, error) {
	return SimulateRegionsOptCtx(context.Background(), sel, simCfg, opts)
}

// SimulateRegionsOptCtx is SimulateRegionsOpt under a caller context:
// cancellation or deadline expiry stops the sweep at the next region
// boundary instead of draining the queue, unstarted regions report
// ctx.Err(), and the aggregate error is the cancellation. The serving
// layer uses this to bound jobs by per-request deadlines.
func SimulateRegionsOptCtx(ctx context.Context, sel *Selection, simCfg timing.Config, opts SimOpts) ([]RegionResult, *Degradation, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	checkpoints, err := extractCheckpoints(sel)
	if err != nil {
		return nil, nil, err
	}
	popts := pool.Options{
		Width:       opts.Width,
		Attempts:    opts.Attempts,
		ItemTimeout: opts.RegionTimeout,
		Degraded:    opts.Degraded,
	}
	arena := &simulatorArena{cfg: simCfg}
	// With Config.ProgressDir set, completed regions journal durably and
	// a restarted sweep serves them from the journal instead of
	// re-simulating (see simprogress.go); sp is nil otherwise.
	sp := openSimProgress(sel, simCfg)
	defer sp.close()
	results, errs, err := pool.MapWith(ctx, len(sel.Points), popts,
		func(ctx context.Context, i int) (RegionResult, error) {
			if res, ok := sp.lookup(i); ok {
				return res, nil
			}
			res, err := simulateOneRegion(ctx, sel, arena, checkpoints, i)
			if err == nil {
				sp.record(i, res)
			}
			return res, err
		})
	if err != nil {
		return nil, nil, err
	}
	if !opts.Degraded {
		return results, nil, nil
	}

	// Weigh each looppoint by its share of the selection's extrapolation
	// mass (multiplier × filtered work), so coverage reflects how much of
	// the whole-program estimate each loss removes.
	var totalMass float64
	for _, lp := range sel.Points {
		totalMass += lp.Multiplier * float64(lp.Region.Filtered)
	}
	deg := &Degradation{ResidualCoverage: 1}
	var survivors []RegionResult
	for i, lp := range sel.Points {
		if errs[i] == nil {
			survivors = append(survivors, results[i])
			continue
		}
		w := 0.0
		if totalMass > 0 {
			w = lp.Multiplier * float64(lp.Region.Filtered) / totalMass
		}
		deg.Failed = append(deg.Failed, RegionFailure{
			Region: lp.Region.Index,
			Err:    errs[i].Error(),
			Weight: w,
		})
		deg.ResidualCoverage -= w
	}
	if !deg.Degraded() {
		return survivors, nil, nil
	}
	minCov := opts.MinCoverage
	switch {
	case minCov == 0:
		minCov = DefaultMinCoverage
	case minCov < 0:
		minCov = 0 // explicit "no floor": accept any surviving coverage
	}
	if deg.ResidualCoverage < minCov {
		return survivors, deg, fmt.Errorf(
			"core: %d of %d regions failed, residual coverage %.1f%% < %.1f%%: %w",
			len(deg.Failed), len(sel.Points), deg.ResidualCoverage*100, minCov*100, ErrLowCoverage)
	}
	return survivors, deg, nil
}

// ExtrapolateDegraded reconstructs whole-program metrics from an
// incomplete region sweep: the surviving extrapolation is scaled by
// 1/ResidualCoverage, treating the lost regions as behaving like the
// weighted average of the survivors. With no degradation it is exactly
// Extrapolate.
func ExtrapolateDegraded(results []RegionResult, freqGHz float64, deg *Degradation) Prediction {
	p := Extrapolate(results, freqGHz)
	if !deg.Degraded() || deg.ResidualCoverage <= 0 {
		return p
	}
	s := 1 / deg.ResidualCoverage
	p.Cycles *= s
	p.Instructions *= s
	p.BranchMisses *= s
	p.Branches *= s
	p.L1DMisses *= s
	p.L2Misses *= s
	p.L3Misses *= s
	p.Stack.Base *= s
	p.Stack.Ifetch *= s
	p.Stack.Memory *= s
	p.Stack.Branch *= s
	p.Stack.Compute *= s
	p.Stack.Sync *= s
	p.Seconds = p.Cycles / (freqGHz * 1e9)
	return p
}
