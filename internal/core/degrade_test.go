package core

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"looppoint/internal/faults"
	"looppoint/internal/omp"
	"looppoint/internal/testprog"
	"looppoint/internal/timing"
)

func testSelection(t *testing.T) *Selection {
	t.Helper()
	p := testprog.Phased(4, 10, 150, omp.Passive)
	a, err := Analyze(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Points) < 2 {
		t.Fatalf("need >= 2 looppoints for degradation tests, got %d", len(sel.Points))
	}
	return sel
}

// TestDegradedDropsFailedRegion: with one injected region failure, the
// degraded sweep completes, reports the loss, and reweights.
func TestDegradedDropsFailedRegion(t *testing.T) {
	sel := testSelection(t)
	defer faults.Enable(faults.NewPlan(1,
		faults.Rule{Site: "core.region.sim", Kind: faults.Transient, Rate: 1, Count: 1}))()
	// Width 1 makes the failing invocation deterministic: the first point.
	results, deg, err := SimulateRegionsOpt(sel, timing.Gainestown(4), SimOpts{
		Width: 1, Degraded: true, MinCoverage: 0.01,
	})
	if err != nil {
		t.Fatalf("degraded sweep failed: %v", err)
	}
	if !deg.Degraded() || len(deg.Failed) != 1 {
		t.Fatalf("degradation = %+v, want exactly one failure", deg)
	}
	if deg.Failed[0].Region != sel.Points[0].Region.Index {
		t.Errorf("failed region %d, want %d", deg.Failed[0].Region, sel.Points[0].Region.Index)
	}
	if len(results) != len(sel.Points)-1 {
		t.Errorf("%d survivors, want %d", len(results), len(sel.Points)-1)
	}
	if deg.ResidualCoverage >= 1 || deg.ResidualCoverage <= 0 {
		t.Errorf("residual coverage %f out of (0, 1)", deg.ResidualCoverage)
	}
	want := 1 - deg.Failed[0].Weight
	if math.Abs(deg.ResidualCoverage-want) > 1e-12 {
		t.Errorf("residual coverage %f, want %f", deg.ResidualCoverage, want)
	}
}

// TestDegradedRetryRecovers: a transient single-shot fault plus a retry
// budget yields a complete, byte-identical sweep.
func TestDegradedRetryRecovers(t *testing.T) {
	sel := testSelection(t)
	strict, err := SimulateRegionsN(sel, timing.Gainestown(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer faults.Enable(faults.NewPlan(1,
		faults.Rule{Site: "core.region.sim", Kind: faults.Transient, Rate: 1, Count: 1}))()
	results, deg, err := SimulateRegionsOpt(sel, timing.Gainestown(4), SimOpts{
		Width: 1, Degraded: true, Attempts: 3,
	})
	if err != nil {
		t.Fatalf("sweep with retries failed: %v", err)
	}
	if deg.Degraded() {
		t.Fatalf("degradation = %+v, want complete recovery", deg)
	}
	if len(results) != len(strict) {
		t.Fatalf("%d results, want %d", len(results), len(strict))
	}
	for i := range results {
		if !reflect.DeepEqual(results[i].Stats, strict[i].Stats) {
			t.Errorf("region %d stats differ after recovered retry", i)
		}
	}
}

// TestDegradedPanicBecomesRegionFailure: a worker panic in degraded mode
// is confined to its region.
func TestDegradedPanicBecomesRegionFailure(t *testing.T) {
	sel := testSelection(t)
	defer faults.Enable(faults.NewPlan(1,
		faults.Rule{Site: "core.region.sim", Kind: faults.Panic, Rate: 1, Count: 1}))()
	results, deg, err := SimulateRegionsOpt(sel, timing.Gainestown(4), SimOpts{
		Width: 1, Degraded: true, MinCoverage: 0.01,
	})
	if err != nil {
		t.Fatalf("degraded sweep failed: %v", err)
	}
	if len(deg.Failed) != 1 {
		t.Fatalf("degradation = %+v, want one failure", deg)
	}
	if len(results) != len(sel.Points)-1 {
		t.Errorf("%d survivors, want %d", len(results), len(sel.Points)-1)
	}
}

// TestLowCoverageIsTyped: losing every region fails with ErrLowCoverage.
func TestLowCoverageIsTyped(t *testing.T) {
	sel := testSelection(t)
	defer faults.Enable(faults.NewPlan(1,
		faults.Rule{Site: "core.region.sim", Kind: faults.Transient, Rate: 1}))()
	_, deg, err := SimulateRegionsOpt(sel, timing.Gainestown(4), SimOpts{
		Width: 1, Degraded: true,
	})
	if !errors.Is(err, ErrLowCoverage) {
		t.Fatalf("err = %v, want ErrLowCoverage", err)
	}
	if len(deg.Failed) != len(sel.Points) {
		t.Errorf("%d failures recorded, want %d", len(deg.Failed), len(sel.Points))
	}
}

// TestExtrapolateDegradedScales: the reweighted prediction is the plain
// extrapolation divided by the residual coverage.
func TestExtrapolateDegradedScales(t *testing.T) {
	sel := testSelection(t)
	results, err := SimulateRegionsN(sel, timing.Gainestown(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	plain := Extrapolate(results, 2.66)
	if got := ExtrapolateDegraded(results, 2.66, nil); got != plain {
		t.Errorf("nil degradation changed the prediction")
	}
	deg := &Degradation{
		Failed:           []RegionFailure{{Region: 0, Weight: 0.5}},
		ResidualCoverage: 0.5,
	}
	scaled := ExtrapolateDegraded(results, 2.66, deg)
	if math.Abs(scaled.Cycles-2*plain.Cycles) > 1e-9*plain.Cycles {
		t.Errorf("cycles %f, want %f", scaled.Cycles, 2*plain.Cycles)
	}
	if math.Abs(scaled.Seconds-2*plain.Seconds) > 1e-9*plain.Seconds {
		t.Errorf("seconds %f, want %f", scaled.Seconds, 2*plain.Seconds)
	}
	if math.Abs(scaled.Instructions-2*plain.Instructions) > 1e-6 {
		t.Errorf("instructions %f, want %f", scaled.Instructions, 2*plain.Instructions)
	}
}

// TestRunDegradedReportMarksLoss: the end-to-end Run in degraded mode
// surfaces the loss in the report and its summary.
func TestRunDegradedReportMarksLoss(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	defer faults.Enable(faults.NewPlan(1,
		faults.Rule{Site: "core.region.sim", Kind: faults.Transient, Rate: 1, Count: 1}))()
	rep, err := Run(p, testConfig(), timing.Gainestown(4), RunOpts{
		Width: 1, Degraded: true, MinCoverage: 0.01,
	})
	if err != nil {
		t.Fatalf("degraded Run failed: %v", err)
	}
	if !rep.Degradation.Degraded() {
		t.Fatal("report does not record the degradation")
	}
	sum := rep.Summary()
	if want := "degraded"; !strings.Contains(sum, want) {
		t.Errorf("summary %q does not mention %q", sum, want)
	}
}
