// Package core implements the LoopPoint methodology end to end (paper
// Section III): reproducible whole-program recording, DCFG-based loop
// identification, BBV profiling with spin-loop filtering and loop-entry
// slice boundaries, SimPoint clustering of per-thread-concatenated BBVs,
// representative (looppoint) selection with work multipliers, parallel
// region simulation with warmup, and runtime extrapolation with error
// reporting against the full-application simulation.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"looppoint/internal/bbv"
	"looppoint/internal/dcfg"
	"looppoint/internal/exec"
	"looppoint/internal/isa"
	"looppoint/internal/pinball"
	"looppoint/internal/pool"
	"looppoint/internal/simpoint"
	"looppoint/internal/timing"
)

// Config holds the methodology knobs.
type Config struct {
	// SliceUnit is the per-thread slice size in filtered instructions;
	// the global slice target is N × SliceUnit for an N-threaded program
	// (the paper uses 100 M; this repository's workloads are scaled down
	// by workloads.Scale, so the default here is 100 K).
	SliceUnit uint64
	// MaxK caps the number of clusters (paper: 50).
	MaxK int
	// Dims is the projected BBV dimensionality (paper: 100).
	Dims int
	// Seed drives every random choice (projection, k-means, OS model).
	Seed uint64
	// FlowWindow is the flow-control window (in instructions) used while
	// recording and profiling so all threads progress evenly.
	FlowWindow uint64
	// MarkerEntryBudget bounds how many times a marker PC may fire per
	// slice for it to count as a stable region boundary.
	MarkerEntryBudget uint64
	// Warmup selects region-simulation warmup (perfect/functional by default).
	Warmup timing.WarmupMode
	// WarmupRegions is how many preceding regions a checkpoint-driven
	// region simulation warms over (default 1; the paper assumes "a
	// large enough warmup region added to the representative region").
	WarmupRegions int
	// RegionSim selects how looppoints are simulated (checkpoint-driven
	// by default).
	RegionSim RegionSimMode
	// SumBBVs switches to naive summed (rather than concatenated)
	// per-thread BBVs — the ablation of Section III-B's insight.
	SumBBVs bool
	// HostBias emulates an imbalanced host during recording (per-thread
	// scheduling-quantum multipliers). The flow-control window is what
	// keeps a biased host from skewing the profile; the flow-control
	// ablation records with bias and toggles the window.
	HostBias []int
	// NoSpinFilter disables synchronization-library filtering — the
	// ablation corresponding to the naive SimPoint adaptation.
	NoSpinFilter bool
	// VariableSlices enables phase-aligned variable-length slicing
	// (Section III-B's alternative after Lau et al.): regions may close
	// early at a worker-loop entry when the basic-block mix shifts.
	VariableSlices bool
	// SlowPath forces the per-instruction reference engine everywhere the
	// pipeline would otherwise use the block-batched fast path — the BBV
	// collector attaches to the per-instruction observer tier, region
	// simulators fast-forward one instruction at a time — and forces the
	// naive serial clustering reference path (ProjectRegionsSlow +
	// KMeansSlow) instead of the sparse/Hamerly fast engine. Model-derived
	// output is byte-identical either way (pinned by the determinism
	// tests); the flag exists for cross-checking and debugging.
	SlowPath bool
	// ClusterWorkers bounds the worker pool the clustering stage fans out
	// on — the BBV projections and the k=1..MaxK BIC sweep (0 = one
	// worker per CPU, 1 = serial). Selections are byte-identical at every
	// width; only host time changes.
	ClusterWorkers int
	// AnalyzeWorkers enables the checkpoint-parallel analysis front-end:
	// the DCFG and BBV replay passes are sharded at deterministic
	// checkpoint boundaries and run on a pool of this width (<= 0 keeps
	// the serial reference path). The profile is byte-identical at every
	// width — pinned by the analyze identity suite — and any shard
	// failure degrades to a serial re-replay of the same recording.
	// SlowPath and VariableSlices force the serial path.
	AnalyzeWorkers int
	// CheckpointEvery is the shard width in schedule steps for the
	// parallel analysis (0 = a deterministic default derived from the
	// recording length only, so results never depend on worker count).
	CheckpointEvery uint64
	// ProgressDir enables durable mid-job progress (crash-only workers):
	// the analysis replays in bounded epochs and persists a checksummed
	// recovery point after each one, and region simulation journals every
	// completed region, all under this directory. A killed job restarted
	// with the same ProgressKey resumes from its last durable epoch
	// instead of step 0, byte-identically. Empty disables; SlowPath and
	// VariableSlices force the non-durable reference path.
	ProgressDir string
	// ProgressEvery is the durable-progress epoch width in schedule steps
	// (0 = the parallel front-end's deterministic shard width).
	ProgressEvery uint64
	// ProgressKey names this job's progress files. Jobs sharing a key and
	// an analysis-relevant configuration resume each other's work (the
	// serving layer derives it from the job's content address). Empty
	// derives a key from the program name.
	ProgressKey string
	// Progress, when set, receives durable-progress counters — epoch
	// saves, recoveries, steps those recoveries skipped — shared across
	// every job of a server and exposed via /v1/stats.
	Progress *ProgressStats
	// Selector names the selection engine ("simpoint" by default; see
	// simpoint.SelectorNames). "stratified" draws multiple seeded random
	// representatives per cluster with two-phase budget allocation and
	// makes per-metric confidence intervals estimable.
	Selector string
	// SampleBudget is the total region-draw budget for multi-draw
	// engines (0 = engine default; the medoid engine ignores it).
	SampleBudget int
	// PilotPerStratum is the stratified engine's phase-one pilot draw
	// count per cluster (0 = simpoint.DefaultPilot).
	PilotPerStratum int
	// Confidence is the level for extrapolated confidence intervals
	// (0 = simpoint.DefaultConfidence, i.e. 95%).
	Confidence float64
	// ProportionalAlloc switches the stratified engine from Neyman to
	// proportional phase-two allocation (calibration ablation).
	ProportionalAlloc bool
}

// DefaultConfig returns the paper's parameters at this repository's scale.
func DefaultConfig() Config {
	return Config{
		SliceUnit:         100_000,
		MaxK:              simpoint.DefaultMaxK,
		Dims:              simpoint.DefaultDims,
		Seed:              42,
		FlowWindow:        4096,
		MarkerEntryBudget: 64,
		Warmup:            timing.WarmupFunctional,
		WarmupRegions:     2,
	}
}

func (c *Config) fill() {
	if c.SliceUnit == 0 {
		c.SliceUnit = 100_000
	}
	if c.MaxK == 0 {
		c.MaxK = simpoint.DefaultMaxK
	}
	if c.Dims == 0 {
		c.Dims = simpoint.DefaultDims
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.FlowWindow == 0 {
		c.FlowWindow = 4096
	}
	if c.MarkerEntryBudget == 0 {
		c.MarkerEntryBudget = 64
	}
	if c.WarmupRegions == 0 {
		c.WarmupRegions = 2
	}
	if c.Selector == "" {
		c.Selector = "simpoint"
	}
	if c.Confidence == 0 {
		c.Confidence = simpoint.DefaultConfidence
	}
}

// Analysis is the up-front, one-time application analysis (Section III-I):
// the recorded pinball, the DCFG with its loop table, the chosen marker
// set, and the sliced BBV profile.
type Analysis struct {
	Prog    *isa.Program
	Pinball *pinball.Pinball
	Graph   *dcfg.Graph
	Loops   *dcfg.LoopTable
	Markers []uint64
	Profile *bbv.Profile
	Config  Config
}

// Analyze records the program once and profiles the recording: a DCFG
// replay identifies worker loops, then a BBV replay collects sliced,
// spin-filtered vectors at loop boundaries. With Config.AnalyzeWorkers
// set, both replay passes run checkpoint-parallel over shards of the
// recording (byte-identical to serial; see analyzeParallel), degrading
// to the serial reference path if any shard fails.
func Analyze(prog *isa.Program, cfg Config) (*Analysis, error) {
	cfg.fill()
	if cfg.ProgressDir != "" && !cfg.SlowPath && !cfg.VariableSlices {
		if a, err := analyzeDurable(prog, cfg); err == nil {
			return a, nil
		}
		// Durable progress must never wedge a job: any failure in the
		// crash-only path (unwritable directory, unrecoverable state)
		// falls back to the stateless pipeline below.
	}
	pb, err := pinball.RecordWithOptions(prog, cfg.Seed, exec.RunOpts{
		FlowWindow:  cfg.FlowWindow,
		QuantumBias: cfg.HostBias,
	})
	if err != nil {
		return nil, fmt.Errorf("core: analyze %s: %w", prog.Name, err)
	}
	if cfg.AnalyzeWorkers > 0 && !cfg.SlowPath && !cfg.VariableSlices {
		if a, err := analyzeParallel(prog, cfg, pb); err == nil {
			return a, nil
		}
		// A shard failure (fault injection, resource trouble) is never
		// fatal: the serial reference path re-replays the same recording
		// and produces the identical analysis.
	}
	return analyzeSerial(prog, cfg, pb)
}

// sliceTargetFor returns the global filtered-instruction budget per
// slice: N × SliceUnit for an N-threaded program.
func sliceTargetFor(prog *isa.Program, cfg *Config) uint64 {
	return cfg.SliceUnit * uint64(prog.NumThreads())
}

// markersAndModulus derives the marker set and the per-marker hit-count
// moduli from the whole-run DCFG — shared verbatim by the serial and
// checkpoint-parallel analysis paths, so marker choice can never differ
// between them.
func markersAndModulus(prog *isa.Program, cfg *Config, pb *pinball.Pinball, g *dcfg.Graph, loops *dcfg.LoopTable) ([]uint64, map[uint64]uint64, error) {
	sliceTarget := sliceTargetFor(prog, cfg)
	expectedSlices := pb.Schedule.Steps()/sliceTarget + 1
	maxExecs := cfg.MarkerEntryBudget * expectedSlices
	var markers []uint64
	for _, h := range g.StableMarkers(loops, maxExecs) {
		markers = append(markers, h.Addr)
	}
	if len(markers) == 0 {
		return nil, nil, fmt.Errorf("core: %s has no loops to mark regions with", prog.Name)
	}
	// Symmetric worker-loop headers (entered once per thread per episode)
	// fire in N-hit bursts under natural scheduling; restrict their
	// boundary counts to episode leaders so (PC, count) regions stay
	// stable across interleavings (the paper's stable-region requirement).
	modulus := make(map[uint64]uint64)
	for _, addr := range markers {
		if blk, ok := prog.BlockByAddr(addr); ok {
			if n := g.Nodes[blk.Global]; n != nil && n.Symmetric(prog.NumThreads()) {
				modulus[addr] = uint64(prog.NumThreads())
			}
		}
	}
	return markers, modulus, nil
}

// analyzeSerial is the reference analysis pipeline: two whole-run serial
// replays of the recording (DCFG, then BBV). The parallel front-end is
// pinned byte-identical to this path and degrades to it on any failure.
func analyzeSerial(prog *isa.Program, cfg Config, pb *pinball.Pinball) (*Analysis, error) {
	db := dcfg.NewBuilder(prog, prog.NumThreads())
	if _, err := pb.Replay(prog, db); err != nil {
		return nil, fmt.Errorf("core: DCFG replay of %s: %w", prog.Name, err)
	}
	g := db.Graph()
	loops := g.FindLoops()

	markers, modulus, err := markersAndModulus(prog, &cfg, pb, g, loops)
	if err != nil {
		return nil, err
	}

	col := bbv.NewCollector(prog, markers, sliceTargetFor(prog, &cfg))
	col.SetMarkerModulus(modulus)
	if cfg.NoSpinFilter {
		col.DisableSyncFilter()
	}
	if cfg.VariableSlices {
		col.SetVariableSlices(0.25, 0.5)
	}
	// The collector implements exec.BlockObserver, so Replay normally
	// routes it to the block-batched tier. SlowPath hides that method by
	// wrapping the per-instruction entry point, forcing the reference
	// engine; the resulting profile is byte-identical.
	var bbvObs exec.Observer = col
	if cfg.SlowPath {
		bbvObs = exec.ObserverFunc(col.OnInstr)
	}
	if _, err := pb.Replay(prog, bbvObs); err != nil {
		return nil, fmt.Errorf("core: BBV replay of %s: %w", prog.Name, err)
	}
	prof := col.Finish()
	if len(prof.Regions) == 0 {
		return nil, fmt.Errorf("core: %s produced no regions", prog.Name)
	}
	return &Analysis{
		Prog: prog, Pinball: pb, Graph: g, Loops: loops,
		Markers: markers, Profile: prof, Config: cfg,
	}, nil
}

// LoopPoint is one selected representative region with its extrapolation
// multiplier (Equation 2).
type LoopPoint struct {
	Region      *bbv.Region
	Cluster     int
	ClusterSize int
	// Multiplier is Σ filtered counts of represented regions divided by
	// this region's filtered count — generalized for multi-draw engines
	// to W_h / (n_h · w_i), the per-draw share of the stratum's work,
	// so Σ value_i × multiplier_i stays the stratified ratio estimate.
	Multiplier float64
	// Spread is the average distance (in the projected BBV space) from
	// the cluster's members to this representative — a confidence proxy:
	// a tight cluster extrapolates reliably, a diffuse one less so.
	Spread float64
	// Draws is how many representatives the point's stratum contributed
	// (n_h; 1 under the classic pick-the-medoid rule).
	Draws int
	// Weight is the draw's share of total work; weights sum to 1 across
	// the selection.
	Weight float64
}

// Selection is the set of looppoints chosen for an application.
type Selection struct {
	Analysis *Analysis
	Result   *simpoint.Result
	// Sample is the engine-level selection: which engine drew the
	// points, the sampling strata, and the per-draw weights. It is what
	// interval estimation consumes; Result is nil for engines that
	// stratify without clustering (e.g. "timebased").
	Sample *simpoint.Selection
	Points []LoopPoint
}

// Engine names the selection engine that produced the selection
// ("simpoint" for pre-interface selections restored from journals).
func (s *Selection) Engine() string {
	if s.Sample == nil {
		return "simpoint"
	}
	return s.Sample.Engine
}

// Select projects and clusters the profile's regions, then draws
// representatives with the configured selection engine (Section III-E;
// Config.Selector). The default "simpoint" engine picks one medoid per
// cluster and is byte-identical to the pre-interface pipeline — pinned
// by the identity suite and the selections golden file.
func Select(a *Analysis) (*Selection, error) {
	cfg := a.Config
	regions := a.Profile.Regions
	// The fast clustering engine (sparse projections, Hamerly-bounded
	// k-means, parallel BIC sweep) and the naive -slowpath reference are
	// byte-identical (pinned by TestFastSlowPathsByteIdentical and the
	// simpoint identity suite), so selections, journals, and golden files
	// never depend on which path produced them.
	var vectors [][]float64
	switch {
	case cfg.SumBBVs && cfg.SlowPath:
		vectors = simpoint.SumProjectRegionsSlow(regions, a.Profile.NumBlocks, cfg.Dims, cfg.Seed)
	case cfg.SumBBVs:
		vectors = simpoint.SumProjectRegionsN(regions, a.Profile.NumBlocks, cfg.Dims, cfg.Seed, cfg.ClusterWorkers)
	case cfg.SlowPath:
		vectors = simpoint.ProjectRegionsSlow(regions, a.Profile.NumBlocks, cfg.Dims, cfg.Seed)
	default:
		vectors = simpoint.ProjectRegionsN(regions, a.Profile.NumBlocks, cfg.Dims, cfg.Seed, cfg.ClusterWorkers)
	}
	weights := make([]float64, len(regions))
	for i, r := range regions {
		weights[i] = float64(r.Filtered)
	}
	engine := cfg.Selector
	if engine == "" {
		engine = "simpoint"
	}
	sl, err := simpoint.NewSelector(engine)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", a.Prog.Name, err)
	}
	sp, err := sl.Select(vectors, weights, simpoint.Options{
		MaxK: cfg.MaxK, Seed: cfg.Seed,
		Workers: cfg.ClusterWorkers, Slow: cfg.SlowPath,
	}, simpoint.SelectorOpts{
		Budget: cfg.SampleBudget, Pilot: cfg.PilotPerStratum,
		Proportional: cfg.ProportionalAlloc,
	})
	if err != nil {
		return nil, fmt.Errorf("core: selecting %s: %w", a.Prog.Name, err)
	}

	sel := &Selection{Analysis: a, Result: sp.Result, Sample: sp}
	// Exact per-stratum work totals (uint64 sums — no float rounding).
	stratumFiltered := make([]uint64, len(sp.Strata))
	for h, st := range sp.Strata {
		for _, m := range st.Members {
			stratumFiltered[h] += regions[m].Filtered
		}
	}
	for _, dr := range sp.Regions {
		st := sp.Strata[dr.Stratum]
		rep := regions[dr.Index]
		// Multiplier W_h/(n_h·w_i): for a one-draw stratum this is the
		// classic Equation-2 multiplier, bit for bit (×1.0 is exact).
		mult := 0.0
		if rep.Filtered > 0 {
			mult = float64(stratumFiltered[dr.Stratum]) /
				(float64(st.Sampled) * float64(rep.Filtered))
		}
		// Mean member distance to this representative, accumulated in
		// ascending member order — the same add sequence the
		// pre-interface loop produced for medoid selections.
		var spread float64
		for _, m := range st.Members {
			spread += dist(vectors[m], vectors[dr.Index])
		}
		sel.Points = append(sel.Points, LoopPoint{
			Region:      rep,
			Cluster:     dr.Stratum,
			ClusterSize: st.Size(),
			Multiplier:  mult,
			Spread:      spread / float64(st.Size()),
			Draws:       st.Sampled,
			Weight:      dr.Weight,
		})
	}
	sort.Slice(sel.Points, func(i, k int) bool {
		return sel.Points[i].Region.Index < sel.Points[k].Region.Index
	})
	return sel, nil
}

// RegionSimMode selects how looppoints are simulated.
type RegionSimMode int

// Region simulation modes.
const (
	// RegionSimCheckpoint restores each looppoint's region pinball and
	// simulates it unconstrained from the snapshot, warming over the
	// captured warmup prefix (the ELFie-style path). All checkpoints
	// are extracted in one replay sweep, so total work scales with the
	// sample size, not with sample × application length.
	RegionSimCheckpoint RegionSimMode = iota
	// RegionSimBinaryDriven re-executes the binary from the program
	// start for every region with functional warming ("perfect warmup",
	// Section III-F) — the paper's most accurate configuration, at the
	// cost of visiting the whole prefix per region.
	RegionSimBinaryDriven
)

func (m RegionSimMode) String() string {
	if m == RegionSimBinaryDriven {
		return "binary-driven"
	}
	return "checkpoint"
}

// RegionResult pairs a looppoint with its simulated statistics and the
// host time the simulation took (for actual-speedup accounting).
type RegionResult struct {
	Point    LoopPoint
	Stats    *timing.Stats
	HostTime time.Duration
}

// SimulateRegions runs a detailed simulation of every looppoint. With
// parallel true the regions are simulated concurrently (checkpoints make
// the runs independent — Section III-J) on a pool bounded at one worker
// per CPU; see SimulateRegionsN for an explicit width.
func SimulateRegions(sel *Selection, simCfg timing.Config, parallel bool) ([]RegionResult, error) {
	width := 1
	if parallel {
		width = pool.DefaultWidth()
	}
	return SimulateRegionsN(sel, simCfg, width)
}

// SimulateRegionsN simulates every looppoint on a worker pool of the
// given width (<= 0 means one worker per CPU). Each region gets its own
// simulator seeded from the analysis config, so the per-region statistics
// — and therefore the extrapolated prediction — are byte-identical at any
// width; only host time varies. The first simulation error cancels the
// remaining unstarted regions.
func SimulateRegionsN(sel *Selection, simCfg timing.Config, width int) ([]RegionResult, error) {
	return SimulateRegionsNCtx(context.Background(), sel, simCfg, width)
}

// SimulateRegionsNCtx is SimulateRegionsN under a caller context:
// cancellation or deadline expiry stops the sweep at the next region
// boundary instead of draining the remaining queue.
func SimulateRegionsNCtx(ctx context.Context, sel *Selection, simCfg timing.Config, width int) ([]RegionResult, error) {
	results, _, err := SimulateRegionsOptCtx(ctx, sel, simCfg, SimOpts{Width: width})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Prediction is the extrapolated whole-program performance (Equation 1,
// generalized to every metric of interest as Section III-G notes).
type Prediction struct {
	Cycles       float64
	Seconds      float64
	Instructions float64
	BranchMisses float64
	Branches     float64
	L1DMisses    float64
	L2Misses     float64
	L3Misses     float64
	// Stack is the extrapolated cycle decomposition (CPI stack).
	Stack timing.CPIStack
}

// BranchMPKI returns the predicted branch misses per kilo-instruction.
func (p Prediction) BranchMPKI() float64 { return fmpki(p.BranchMisses, p.Instructions) }

// L1DMPKI returns the predicted L1-D MPKI.
func (p Prediction) L1DMPKI() float64 { return fmpki(p.L1DMisses, p.Instructions) }

// L2MPKI returns the predicted L2 MPKI.
func (p Prediction) L2MPKI() float64 { return fmpki(p.L2Misses, p.Instructions) }

// L3MPKI returns the predicted L3 MPKI.
func (p Prediction) L3MPKI() float64 { return fmpki(p.L3Misses, p.Instructions) }

func fmpki(m, i float64) float64 {
	if i == 0 {
		return 0
	}
	return m / i * 1000
}

// Extrapolate reconstructs whole-program metrics from the region results:
// total = Σ_i value_i × multiplier_i.
func Extrapolate(results []RegionResult, freqGHz float64) Prediction {
	var p Prediction
	for _, r := range results {
		m := r.Point.Multiplier
		p.Cycles += r.Stats.Cycles * m
		p.Instructions += float64(r.Stats.Instructions) * m
		p.BranchMisses += float64(r.Stats.BranchMisses) * m
		p.Branches += float64(r.Stats.Branches) * m
		p.L1DMisses += float64(r.Stats.L1DMisses) * m
		p.L2Misses += float64(r.Stats.L2Misses) * m
		p.L3Misses += float64(r.Stats.L3Misses) * m
		p.Stack.Add(timing.CPIStack{
			Base:    r.Stats.Stack.Base * m,
			Ifetch:  r.Stats.Stack.Ifetch * m,
			Memory:  r.Stats.Stack.Memory * m,
			Branch:  r.Stats.Stack.Branch * m,
			Compute: r.Stats.Stack.Compute * m,
			Sync:    r.Stats.Stack.Sync * m,
		})
	}
	p.Seconds = p.Cycles / (freqGHz * 1e9)
	return p
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// PercentError returns |predicted-actual|/actual × 100.
func PercentError(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return 100
	}
	e := (predicted - actual) / actual * 100
	if e < 0 {
		e = -e
	}
	return e
}
