// Package faults is a deterministic, seed-driven fault injector for the
// whole sampling pipeline. Production code calls Check/CorruptBytes at
// named injection sites; with no plan enabled those calls are a single
// atomic load, so the hot path pays nothing. Tests (and the FAULTS_SEED
// CI sweep) arm a Plan that decides — purely from the seed, the site
// name, and the per-site invocation index — which invocations fail and
// how: a transient error, a deterministic bit flip in an artifact byte
// stream, a bounded slowdown, or a worker panic. Because the decision is
// a pure function of (seed, site, index), every recovery path in the
// repository is exercised by ordinary `go test` with zero wall-clock
// flakiness, and a failing sweep seed reproduces exactly.
//
// Site naming convention: `<package>.<operation>`, lower-case, dots as
// separators — e.g. "pinball.load", "core.region.sim", "harness.report".
// DESIGN.md §9 lists the armed sites.
package faults

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"looppoint/internal/artifact"
)

// Kind classifies an injected fault.
type Kind uint8

// Fault kinds.
const (
	// Transient makes Check return an injected error — the "machine
	// hiccuped" class a retry can absorb.
	Transient Kind = iota
	// Corrupt makes CorruptBytes flip one deterministic bit in the
	// artifact byte stream passing through the site.
	Corrupt
	// Slow makes Check sleep for the rule's Delay — long enough to trip
	// a small per-item timeout in tests, bounded so suites stay fast.
	Slow
	// Panic makes Check panic with a *Fault — the crashed-worker class
	// degraded mode must survive.
	Panic
)

func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Corrupt:
		return "corrupt"
	case Slow:
		return "slow"
	case Panic:
		return "panic"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind parses a kind name as used in FAULTS_PLAN specs.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "transient", "error":
		return Transient, nil
	case "corrupt":
		return Corrupt, nil
	case "slow":
		return Slow, nil
	case "panic":
		return Panic, nil
	}
	return 0, fmt.Errorf("faults: unknown kind %q", s)
}

// ErrInjected is the sentinel wrapped by every injected fault error, so
// callers (and tests) can tell injected failures from organic ones.
var ErrInjected = errors.New("injected fault")

// Fault is one fired injection. It is the error returned for Transient
// faults and the panic value for Panic faults.
type Fault struct {
	Site  string
	Index uint64 // per-site invocation index that fired
	Kind  Kind
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faults: injected %s fault at %s[%d]", f.Kind, f.Site, f.Index)
}

// Unwrap lets errors.Is(err, faults.ErrInjected) match.
func (f *Fault) Unwrap() error { return ErrInjected }

// DefaultSlowDelay bounds Slow faults when the rule leaves Delay zero:
// long enough to trip millisecond-scale test timeouts, short enough to
// keep suites fast.
const DefaultSlowDelay = 5 * time.Millisecond

// Rule arms one injection site. Which invocations fire is decided by a
// hash of (plan seed, site, invocation index): with Rate r, roughly one
// in r invocations at or past After fires, until Count fires have
// happened. Rate 1 fires every eligible invocation regardless of seed —
// the deterministic setting tests use when they need an exact script.
// Invocation indices are counted per class: Check calls and
// CorruptBytes calls on the same site each have their own counter, so
// After/Rate always index logical operations of the rule's own kind.
type Rule struct {
	Site string
	Kind Kind
	// Rate selects ~1/Rate of invocations (hash-keyed); 0 disables the
	// rule, 1 fires every eligible invocation.
	Rate uint64
	// Count caps how many times the rule fires (0 = unlimited).
	Count uint64
	// After skips the first After invocations of the site — "let some
	// work finish, then kill it" scripting for resume tests.
	After uint64
	// Delay is the added latency for Slow faults (DefaultSlowDelay when
	// zero).
	Delay time.Duration
}

// armedRule pairs a rule with its fire counter.
type armedRule struct {
	Rule
	fired atomic.Uint64
}

// Invocation classes: Check and CorruptBytes keep separate per-site
// counters, so a site armed at both call sites (e.g. pinball.save calls
// Check then CorruptBytes per Save) counts logical operations in each
// class — Rule.After/Rate indices mean "Nth Check" or "Nth CorruptBytes",
// never a merged stream where one Save consumes two indices.
const (
	classCheck = iota
	classCorrupt
	numClasses
)

// site tracks one injection point's per-class invocation counters and
// armed rules.
type site struct {
	calls [numClasses]atomic.Uint64
	rules []*armedRule
}

// Plan is an immutable set of armed rules plus the seed that drives
// every firing decision. Safe for concurrent use.
type Plan struct {
	Seed  uint64
	sites map[string]*site
}

// NewPlan builds a plan from rules. Rules for the same site all get
// consulted on every invocation, first match fires.
func NewPlan(seed uint64, rules ...Rule) *Plan {
	p := &Plan{Seed: seed, sites: make(map[string]*site)}
	for _, r := range rules {
		s := p.sites[r.Site]
		if s == nil {
			s = &site{}
			p.sites[r.Site] = s
		}
		s.rules = append(s.rules, &armedRule{Rule: r})
	}
	return p
}

// hit reports whether a rule fires at invocation idx — a pure function
// of (seed, site, idx), so runs are reproducible per seed.
func (p *Plan) hit(r *armedRule, idx uint64) bool {
	if r.Rate == 0 || idx < r.After {
		return false
	}
	if r.Count > 0 && r.fired.Load() >= r.Count {
		return false
	}
	if r.Rate > 1 {
		h := artifact.FNVOffset
		mix := func(v uint64) {
			for i := 0; i < 8; i++ {
				h ^= (v >> (8 * i)) & 0xff
				h *= artifact.FNVPrime
			}
		}
		mix(p.Seed)
		for _, c := range []byte(r.Site) {
			h ^= uint64(c)
			h *= artifact.FNVPrime
		}
		mix(idx)
		if h%r.Rate != 0 {
			return false
		}
	}
	// Count re-check under increment: allow a small over-fire race only
	// between concurrent invocations of the same site, never beyond +P-1
	// for P simultaneous callers; tests that need an exact count run the
	// site sequentially.
	if r.Count > 0 && r.fired.Add(1) > r.Count {
		return false
	}
	if r.Count == 0 {
		r.fired.Add(1)
	}
	return true
}

// fire looks up the first matching rule of the given kinds at this
// site's next invocation index of the given class.
func (p *Plan) fire(siteName string, class int, kinds ...Kind) (*Fault, *armedRule) {
	s := p.sites[siteName]
	if s == nil {
		return nil, nil
	}
	idx := s.calls[class].Add(1) - 1
	for _, r := range s.rules {
		match := false
		for _, k := range kinds {
			if r.Kind == k {
				match = true
				break
			}
		}
		if match && p.hit(r, idx) {
			return &Fault{Site: siteName, Index: idx, Kind: r.Kind}, r
		}
	}
	return nil, nil
}

// Check is the general injection point: it counts one Check-class
// invocation of the site and, if a Transient/Slow/Panic rule fires,
// returns an injected error, sleeps, or panics respectively. Corrupt
// rules never fire here — they belong to CorruptBytes, whose invocations
// are counted separately.
func (p *Plan) Check(siteName string) error {
	f, r := p.fire(siteName, classCheck, Transient, Slow, Panic)
	if f == nil {
		return nil
	}
	switch f.Kind {
	case Slow:
		d := r.Delay
		if d <= 0 {
			d = DefaultSlowDelay
		}
		time.Sleep(d)
		return nil
	case Panic:
		panic(f)
	default:
		return f
	}
}

// CorruptBytes counts one Corrupt-class invocation of the site
// (independent of the site's Check counter) and, if a Corrupt rule
// fires, flips one deterministically chosen bit of data in place and
// reports true. Empty data is never touched.
func (p *Plan) CorruptBytes(siteName string, data []byte) bool {
	if len(data) == 0 {
		return false
	}
	f, _ := p.fire(siteName, classCorrupt, Corrupt)
	if f == nil {
		return false
	}
	h := artifact.Checksum([]byte(fmt.Sprintf("%d/%s/%d", p.Seed, siteName, f.Index)))
	data[h%uint64(len(data))] ^= 1 << ((h >> 32) % 8)
	return true
}

// Fired returns how many times any rule at the site has fired — test
// observability.
func (p *Plan) Fired(siteName string) uint64 {
	s := p.sites[siteName]
	if s == nil {
		return 0
	}
	var n uint64
	for _, r := range s.rules {
		n += r.fired.Load()
	}
	return n
}

// active is the process-wide plan; nil means injection is disabled and
// every Check/CorruptBytes is a single atomic load.
var active atomic.Pointer[Plan]

// Enable installs a plan globally and returns a restore function that
// reinstates the previous plan — `defer faults.Enable(plan)()` in tests.
func Enable(p *Plan) (restore func()) {
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// Disable removes any active plan.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is active.
func Enabled() bool { return active.Load() != nil }

// Check consults the active plan, if any. The nil fast path is one
// atomic load.
func Check(site string) error {
	if p := active.Load(); p != nil {
		return p.Check(site)
	}
	return nil
}

// CorruptBytes consults the active plan, if any.
func CorruptBytes(site string, data []byte) bool {
	if p := active.Load(); p != nil {
		return p.CorruptBytes(site, data)
	}
	return false
}

// SeedFromEnv returns FAULTS_SEED when set (the CI sweep knob), else def.
func SeedFromEnv(def uint64) uint64 {
	if v := os.Getenv("FAULTS_SEED"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// FromEnv builds a plan from the environment, for injecting faults into
// the commands without recompiling:
//
//	FAULTS_PLAN="site:kind:rate[:count[:after]][;site:kind:rate...]"
//	FAULTS_SEED=7   # optional, default 1
//
// e.g. FAULTS_PLAN="lpsim.region:transient:1:1" fails the first region
// simulation once. Returns (nil, nil) when FAULTS_PLAN is unset.
func FromEnv() (*Plan, error) {
	spec := os.Getenv("FAULTS_PLAN")
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("faults: bad FAULTS_PLAN entry %q (want site:kind:rate[:count[:after]])", entry)
		}
		kind, err := ParseKind(parts[1])
		if err != nil {
			return nil, err
		}
		r := Rule{Site: parts[0], Kind: kind}
		if r.Rate, err = strconv.ParseUint(parts[2], 10, 64); err != nil {
			return nil, fmt.Errorf("faults: bad rate in %q: %v", entry, err)
		}
		if len(parts) > 3 {
			if r.Count, err = strconv.ParseUint(parts[3], 10, 64); err != nil {
				return nil, fmt.Errorf("faults: bad count in %q: %v", entry, err)
			}
		}
		if len(parts) > 4 {
			if r.After, err = strconv.ParseUint(parts[4], 10, 64); err != nil {
				return nil, fmt.Errorf("faults: bad after in %q: %v", entry, err)
			}
		}
		rules = append(rules, r)
	}
	return NewPlan(SeedFromEnv(1), rules...), nil
}
