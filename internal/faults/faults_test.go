package faults

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestRateOneFiresEveryInvocation: Rate 1 is the deterministic setting —
// every eligible invocation fires regardless of seed.
func TestRateOneFiresEveryInvocation(t *testing.T) {
	for _, seed := range []uint64{1, 7, 12345} {
		p := NewPlan(seed, Rule{Site: "x", Kind: Transient, Rate: 1})
		for i := 0; i < 10; i++ {
			err := p.Check("x")
			if err == nil {
				t.Fatalf("seed %d: invocation %d did not fire", seed, i)
			}
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("error %v is not a *Fault", err)
			}
			if f.Site != "x" || f.Index != uint64(i) || f.Kind != Transient {
				t.Fatalf("wrong fault fields: %+v", f)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("fault does not unwrap to ErrInjected")
			}
		}
	}
}

// TestCountCapsFires: Count bounds total fires; After skips a prefix.
func TestCountCapsFires(t *testing.T) {
	p := NewPlan(1, Rule{Site: "x", Kind: Transient, Rate: 1, Count: 2, After: 3})
	var fired []int
	for i := 0; i < 10; i++ {
		if p.Check("x") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("expected fires at invocations [3 4], got %v", fired)
	}
	if got := p.Fired("x"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

// TestHashRateDeterministicPerSeed: with Rate>1 the firing pattern is a
// pure function of the seed — two plans with the same seed agree
// invocation-for-invocation, and (for at least one pair of small seeds)
// different seeds produce different patterns.
func TestHashRateDeterministicPerSeed(t *testing.T) {
	pattern := func(seed uint64) []bool {
		p := NewPlan(seed, Rule{Site: "x", Kind: Transient, Rate: 3})
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.Check("x") != nil
		}
		return out
	}
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		a, b := pattern(seed), pattern(seed)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d not deterministic at invocation %d", seed, i)
			}
		}
		// Roughly 1/3 of invocations should fire; require at least one
		// fire and at least one non-fire so the rate is plausibly active.
		n := 0
		for _, hit := range a {
			if hit {
				n++
			}
		}
		if n == 0 || n == len(a) {
			t.Fatalf("seed %d: degenerate pattern, %d/%d fires", seed, n, len(a))
		}
	}
	a, b := pattern(1), pattern(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 1 and 2 produced identical patterns")
	}
}

// TestCorruptBytesFlipsOneBit: corruption flips exactly one bit, at a
// seed-deterministic position.
func TestCorruptBytesFlipsOneBit(t *testing.T) {
	orig := bytes.Repeat([]byte{0xAA}, 256)
	flip := func(seed uint64) []byte {
		p := NewPlan(seed, Rule{Site: "x", Kind: Corrupt, Rate: 1, Count: 1})
		data := append([]byte(nil), orig...)
		if !p.CorruptBytes("x", data) {
			t.Fatalf("seed %d: corruption did not fire", seed)
		}
		return data
	}
	a := flip(9)
	diff := 0
	for i := range a {
		if a[i] != orig[i] {
			diff++
			if x := a[i] ^ orig[i]; x&(x-1) != 0 {
				t.Fatalf("byte %d differs by more than one bit: %02x vs %02x", i, a[i], orig[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("expected exactly 1 corrupted byte, got %d", diff)
	}
	if !bytes.Equal(a, flip(9)) {
		t.Fatalf("same seed corrupted different positions")
	}
	// Check never fires Corrupt rules.
	p := NewPlan(9, Rule{Site: "x", Kind: Corrupt, Rate: 1})
	if err := p.Check("x"); err != nil {
		t.Fatalf("Check fired a Corrupt rule: %v", err)
	}
	// Empty data is left alone.
	if p.CorruptBytes("x", nil) {
		t.Fatalf("CorruptBytes fired on empty data")
	}
}

// TestCheckAndCorruptCountSeparately: a site armed at both a Check and
// a CorruptBytes call site (as pinball.save is — one of each per Save)
// keeps independent invocation counters per class, so After indexes
// logical operations of the rule's own kind instead of a merged stream
// where each save consumes two indices.
func TestCheckAndCorruptCountSeparately(t *testing.T) {
	p := NewPlan(1,
		Rule{Site: "x", Kind: Transient, Rate: 1, After: 2, Count: 1},
		Rule{Site: "x", Kind: Corrupt, Rate: 1, After: 2, Count: 1})
	var checkFired, corruptFired []int
	for i := 0; i < 4; i++ {
		// One logical operation: Check then CorruptBytes, like a Save.
		if p.Check("x") != nil {
			checkFired = append(checkFired, i)
		}
		if p.CorruptBytes("x", []byte{0}) {
			corruptFired = append(corruptFired, i)
		}
	}
	if len(checkFired) != 1 || checkFired[0] != 2 {
		t.Fatalf("Check fired at %v, want [2] (After counts Check invocations)", checkFired)
	}
	if len(corruptFired) != 1 || corruptFired[0] != 2 {
		t.Fatalf("CorruptBytes fired at %v, want [2] (After counts CorruptBytes invocations)", corruptFired)
	}
}

// TestPanicKind: Panic rules panic with a *Fault.
func TestPanicKind(t *testing.T) {
	p := NewPlan(1, Rule{Site: "x", Kind: Panic, Rate: 1})
	defer func() {
		r := recover()
		f, ok := r.(*Fault)
		if !ok {
			t.Fatalf("panic value %v (%T) is not *Fault", r, r)
		}
		if f.Kind != Panic || f.Site != "x" {
			t.Fatalf("wrong fault: %+v", f)
		}
	}()
	p.Check("x")
	t.Fatalf("Check did not panic")
}

// TestSlowKind: Slow rules sleep for at least the configured delay and
// return nil.
func TestSlowKind(t *testing.T) {
	p := NewPlan(1, Rule{Site: "x", Kind: Slow, Rate: 1, Delay: 2 * time.Millisecond})
	start := time.Now()
	if err := p.Check("x"); err != nil {
		t.Fatalf("Slow returned error: %v", err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("Slow slept only %v", d)
	}
}

// TestGlobalEnableDisable: the package-level fast path consults the
// active plan and restores the previous one.
func TestGlobalEnableDisable(t *testing.T) {
	if Enabled() {
		t.Fatalf("plan active at test start")
	}
	if err := Check("x"); err != nil {
		t.Fatalf("disabled Check returned %v", err)
	}
	restore := Enable(NewPlan(1, Rule{Site: "x", Kind: Transient, Rate: 1}))
	if !Enabled() {
		t.Fatalf("Enabled false after Enable")
	}
	if Check("x") == nil {
		t.Fatalf("enabled Check did not fire")
	}
	restore()
	if Enabled() {
		t.Fatalf("restore did not clear plan")
	}
	if CorruptBytes("x", []byte{1}) {
		t.Fatalf("disabled CorruptBytes fired")
	}
}

// TestFromEnv: the FAULTS_PLAN / FAULTS_SEED spec grammar.
func TestFromEnv(t *testing.T) {
	t.Setenv("FAULTS_PLAN", "")
	if p, err := FromEnv(); p != nil || err != nil {
		t.Fatalf("unset FAULTS_PLAN: got %v, %v", p, err)
	}

	t.Setenv("FAULTS_PLAN", "a.load:transient:1:2; b.sim:panic:3:0:5")
	t.Setenv("FAULTS_SEED", "42")
	p, err := FromEnv()
	if err != nil {
		t.Fatalf("FromEnv: %v", err)
	}
	if p.Seed != 42 {
		t.Fatalf("seed = %d, want 42", p.Seed)
	}
	if err := p.Check("a.load"); err == nil {
		t.Fatalf("a.load rule did not arm")
	}
	if len(p.sites) != 2 {
		t.Fatalf("expected 2 sites, got %d", len(p.sites))
	}
	b := p.sites["b.sim"].rules[0]
	if b.Kind != Panic || b.Rate != 3 || b.Count != 0 || b.After != 5 {
		t.Fatalf("b.sim rule misparsed: %+v", b.Rule)
	}

	for _, bad := range []string{"x", "x:transient", "x:bogus:1", "x:transient:z", "x:transient:1:z", "x:transient:1:1:z"} {
		t.Setenv("FAULTS_PLAN", bad)
		if _, err := FromEnv(); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestSeedFromEnv covers the CI sweep knob.
func TestSeedFromEnv(t *testing.T) {
	t.Setenv("FAULTS_SEED", "")
	if got := SeedFromEnv(7); got != 7 {
		t.Fatalf("default: got %d", got)
	}
	t.Setenv("FAULTS_SEED", "31")
	if got := SeedFromEnv(7); got != 31 {
		t.Fatalf("env: got %d", got)
	}
	t.Setenv("FAULTS_SEED", "nope")
	if got := SeedFromEnv(7); got != 7 {
		t.Fatalf("bad env: got %d", got)
	}
}

// TestSeedSweepRecovery is the seed-robust invariant the CI FAULTS_SEED
// sweep exercises: whatever the seed, a hash-rate transient rule fires
// somewhere in a long run, and a retry loop that tolerates injected
// errors always completes.
func TestSeedSweepRecovery(t *testing.T) {
	seed := SeedFromEnv(1)
	p := NewPlan(seed, Rule{Site: "work", Kind: Transient, Rate: 4})
	done := 0
	for done < 100 {
		if err := p.Check("work"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error: %v", err)
			}
			continue // retry
		}
		done++
	}
	if p.Fired("work") == 0 {
		t.Logf("seed %d fired no faults in this window (allowed, just unlikely)", seed)
	}
}
