package serve

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// Breaker states. Closed admits everything; Open rejects everything
// until OpenFor has elapsed; HalfOpen admits a bounded number of probe
// requests whose outcomes decide between closing and re-opening.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Breaker defaults: five consecutive failures trip the breaker, it holds
// open for ten seconds, and one successful probe closes it again.
const (
	DefaultFailureThreshold = 5
	DefaultOpenFor          = 10 * time.Second
	DefaultHalfOpenProbes   = 1
)

// BreakerOpts configures one circuit breaker. The zero value uses the
// defaults above with the real clock.
type BreakerOpts struct {
	// FailureThreshold is how many consecutive failures (errors or
	// timeouts) trip Closed → Open.
	FailureThreshold int
	// OpenFor is how long the breaker holds Open before letting probe
	// requests through Half-Open.
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent Half-Open probes and is the number
	// of consecutive probe successes required to close. Any probe failure
	// re-opens immediately.
	HalfOpenProbes int
	// Now is the injected clock (nil: time.Now). Every transition
	// decision reads this one function, so tests drive the state machine
	// with a fake clock and zero wall-clock sleeps.
	Now func() time.Time
}

func (o BreakerOpts) fill() BreakerOpts {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = DefaultFailureThreshold
	}
	if o.OpenFor <= 0 {
		o.OpenFor = DefaultOpenFor
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = DefaultHalfOpenProbes
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// BreakerOpenError is the typed rejection returned by Allow while the
// breaker is open (or while Half-Open probe slots are taken). RetryAfter
// is the server's hint for the client's next attempt.
type BreakerOpenError struct {
	Class      string
	State      BreakerState
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("serve: %s breaker %s, retry after %v", e.Class, e.State, e.RetryAfter)
}

// Breaker is a per-job-class circuit breaker: consecutive failures trip
// it open so a failing dependency stops receiving (and queuing) work;
// after OpenFor it probes with a bounded number of requests and closes
// only when the probes succeed. All methods are safe for concurrent use.
//
// Outcome attribution is by completion time, the standard simplification:
// a request admitted while Closed that finishes after a trip is counted
// against the current state. Under the consecutive-failure policy this
// can only delay a close or re-trip an already-suspect class, never mask
// failures.
type Breaker struct {
	class string
	opts  BreakerOpts

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while Closed
	openedAt time.Time // when the breaker last tripped
	probing  int       // in-flight Half-Open probes
	probeOK  int       // consecutive Half-Open probe successes
	trips    uint64
}

// NewBreaker builds a breaker for one job class.
func NewBreaker(class string, opts BreakerOpts) *Breaker {
	return &Breaker{class: class, opts: opts.fill()}
}

// Allow asks to admit one request. A nil return admits it — the caller
// must then report the outcome with exactly one Done (or release the
// slot with Forget if the request is shed before running). A non-nil
// return is a *BreakerOpenError carrying the retry hint.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if wait := b.openedAt.Add(b.opts.OpenFor).Sub(b.opts.Now()); wait > 0 {
			return &BreakerOpenError{Class: b.class, State: BreakerOpen, RetryAfter: wait}
		}
		b.state = BreakerHalfOpen
		b.probing, b.probeOK = 0, 0
		fallthrough
	default: // BreakerHalfOpen
		if b.probing >= b.opts.HalfOpenProbes {
			return &BreakerOpenError{Class: b.class, State: BreakerHalfOpen, RetryAfter: b.opts.OpenFor}
		}
		b.probing++
		return nil
	}
}

// Done reports an admitted request's outcome. Timeouts count as
// failures — a dependency that answers late is as tripped as one that
// errors.
func (b *Breaker) Done(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if success {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.opts.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		if b.probing > 0 {
			b.probing--
		}
		if !success {
			b.trip()
			return
		}
		b.probeOK++
		if b.probeOK >= b.opts.HalfOpenProbes {
			b.state = BreakerClosed
			b.fails = 0
		}
	case BreakerOpen:
		// A straggler from before the trip; the breaker is already open.
	}
}

// Forget releases an Allow slot without recording an outcome — for
// requests admitted past the breaker but shed before running (queue
// full, drain started).
func (b *Breaker) Forget() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probing > 0 {
		b.probing--
	}
}

// trip moves to Open; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.opts.Now()
	b.fails = 0
	b.probeOK = 0
	b.trips++
}

// State returns the breaker's position, resolving an expired Open hold
// the same way Allow would observe it.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has tripped — observability
// for /healthz and the chaos tests.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
