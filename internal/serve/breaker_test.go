package serve

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is the injected breaker clock: tests advance it explicitly,
// so the whole state machine runs with zero wall-clock sleeps.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// Step vocabulary for the table tests.
const (
	stepAllowOK  = "allow-ok"  // Allow must admit
	stepAllowRej = "allow-rej" // Allow must reject with *BreakerOpenError
	stepFail     = "fail"      // Done(false)
	stepOK       = "ok"        // Done(true)
	stepForget   = "forget"    // Forget()
	stepAdvance  = "advance"   // clock += d
)

type breakerStep struct {
	op        string
	d         time.Duration
	wantState BreakerState
}

// TestBreakerStateMachine drives the closed → open → half-open → closed
// machine step by step under the fake clock, checking the state after
// every transition.
func TestBreakerStateMachine(t *testing.T) {
	const openFor = 10 * time.Second
	cases := []struct {
		name      string
		threshold int
		probes    int
		steps     []breakerStep
	}{
		{
			name: "failures_below_threshold_stay_closed", threshold: 3, probes: 1,
			steps: []breakerStep{
				{op: stepAllowOK, wantState: BreakerClosed},
				{op: stepFail, wantState: BreakerClosed},
				{op: stepAllowOK, wantState: BreakerClosed},
				{op: stepFail, wantState: BreakerClosed},
				// A success resets the consecutive-failure count...
				{op: stepAllowOK, wantState: BreakerClosed},
				{op: stepOK, wantState: BreakerClosed},
				// ...so two more failures still do not trip.
				{op: stepFail, wantState: BreakerClosed},
				{op: stepFail, wantState: BreakerClosed},
			},
		},
		{
			name: "threshold_trips_open_and_rejects", threshold: 3, probes: 1,
			steps: []breakerStep{
				{op: stepFail, wantState: BreakerClosed},
				{op: stepFail, wantState: BreakerClosed},
				{op: stepFail, wantState: BreakerOpen},
				{op: stepAllowRej, wantState: BreakerOpen},
				// Still rejecting just shy of the hold expiry.
				{op: stepAdvance, d: openFor - time.Millisecond},
				{op: stepAllowRej, wantState: BreakerOpen},
			},
		},
		{
			name: "half_open_probe_success_closes", threshold: 1, probes: 1,
			steps: []breakerStep{
				{op: stepFail, wantState: BreakerOpen},
				{op: stepAdvance, d: openFor},
				{op: stepAllowOK, wantState: BreakerHalfOpen},
				// Probe slot taken: a concurrent request is rejected.
				{op: stepAllowRej, wantState: BreakerHalfOpen},
				{op: stepOK, wantState: BreakerClosed},
				{op: stepAllowOK, wantState: BreakerClosed},
			},
		},
		{
			name: "half_open_probe_failure_reopens", threshold: 1, probes: 1,
			steps: []breakerStep{
				{op: stepFail, wantState: BreakerOpen},
				{op: stepAdvance, d: openFor},
				{op: stepAllowOK, wantState: BreakerHalfOpen},
				{op: stepFail, wantState: BreakerOpen},
				{op: stepAllowRej, wantState: BreakerOpen},
				// The re-trip restarts the hold from the new trip time.
				{op: stepAdvance, d: openFor},
				{op: stepAllowOK, wantState: BreakerHalfOpen},
				{op: stepOK, wantState: BreakerClosed},
			},
		},
		{
			name: "multi_probe_needs_all_successes", threshold: 1, probes: 2,
			steps: []breakerStep{
				{op: stepFail, wantState: BreakerOpen},
				{op: stepAdvance, d: openFor},
				{op: stepAllowOK, wantState: BreakerHalfOpen},
				{op: stepAllowOK, wantState: BreakerHalfOpen},
				{op: stepAllowRej, wantState: BreakerHalfOpen}, // both slots taken
				{op: stepOK, wantState: BreakerHalfOpen},       // one success is not enough
				{op: stepOK, wantState: BreakerClosed},
			},
		},
		{
			name: "forget_releases_probe_slot", threshold: 1, probes: 1,
			steps: []breakerStep{
				{op: stepFail, wantState: BreakerOpen},
				{op: stepAdvance, d: openFor},
				{op: stepAllowOK, wantState: BreakerHalfOpen},
				// The probe is shed before running (queue full / drain):
				// Forget must free the slot or the class wedges half-open.
				{op: stepForget, wantState: BreakerHalfOpen},
				{op: stepAllowOK, wantState: BreakerHalfOpen},
				{op: stepOK, wantState: BreakerClosed},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			b := NewBreaker("test", BreakerOpts{
				FailureThreshold: tc.threshold,
				OpenFor:          openFor,
				HalfOpenProbes:   tc.probes,
				Now:              clk.Now,
			})
			for i, st := range tc.steps {
				switch st.op {
				case stepAllowOK:
					if err := b.Allow(); err != nil {
						t.Fatalf("step %d: Allow rejected: %v", i, err)
					}
				case stepAllowRej:
					err := b.Allow()
					var open *BreakerOpenError
					if !errors.As(err, &open) {
						t.Fatalf("step %d: Allow = %v, want *BreakerOpenError", i, err)
					}
					if open.RetryAfter <= 0 {
						t.Fatalf("step %d: RetryAfter %v, want > 0", i, open.RetryAfter)
					}
				case stepFail:
					b.Done(false)
				case stepOK:
					b.Done(true)
				case stepForget:
					b.Forget()
				case stepAdvance:
					clk.Advance(st.d)
					continue
				}
				if got := b.State(); got != st.wantState {
					t.Fatalf("step %d (%s): state %v, want %v", i, st.op, got, st.wantState)
				}
			}
		})
	}
}

// TestBreakerTripCounter: trips are counted for observability, and a
// straggler Done from before the trip does not disturb the open state.
func TestBreakerTripCounter(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("test", BreakerOpts{FailureThreshold: 1, OpenFor: time.Second, Now: clk.Now})
	b.Done(false)
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips %d, want 1", got)
	}
	// Straggler outcomes while open are ignored.
	b.Done(true)
	b.Done(false)
	if got, want := b.State(), BreakerOpen; got != want {
		t.Fatalf("state %v, want %v", got, want)
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips %d after stragglers, want 1", got)
	}
	clk.Advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Done(false) // probe fails: second trip
	if got := b.Trips(); got != 2 {
		t.Fatalf("trips %d, want 2", got)
	}
}

// TestBudgetBounds: the retry budget denies once drained and refills at
// Ratio per admitted job, capped at Max.
func TestBudgetBounds(t *testing.T) {
	b := NewBudget(2, 0.5)
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("a full budget must fund two withdrawals")
	}
	if b.Withdraw() {
		t.Fatal("an empty budget must deny")
	}
	if got := b.Denied(); got != 1 {
		t.Fatalf("denied %d, want 1", got)
	}
	b.Deposit()
	b.Deposit() // 1.0 token: fundable again
	if !b.Withdraw() {
		t.Fatal("deposits must refill the budget")
	}
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens %v, want cap 2", got)
	}
	// max <= 0 disables retries outright.
	off := NewBudget(0, 0.5)
	off.Deposit()
	if off.Withdraw() {
		t.Fatal("zero-max budget must always deny")
	}
}
