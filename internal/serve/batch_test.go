package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// postBatch drives POST /v1/batch directly: returns the HTTP status and
// the decoded envelope (zero-valued on non-200).
func postBatch(t *testing.T, s *Server, breq BatchRequest) (int, BatchResponse) {
	t.Helper()
	body, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body)))
	var resp BatchResponse
	if w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad batch body %q: %v", w.Body.String(), err)
		}
	}
	return w.Code, resp
}

// TestServeBatchOK: a well-formed batch runs every sub-job, returns
// index-aligned per-job results, and counts once in the Batches stat
// while each sub-job counts individually in Admitted/Completed.
func TestServeBatchOK(t *testing.T) {
	s := startServer(t, Config{MaxInflight: 2}, okRunner)
	code, resp := postBatch(t, s, BatchRequest{Jobs: []JobRequest{
		{ID: "b0", Class: ClassAnalyze, App: "npb-cg"},
		{ID: "b1", Class: ClassSimulate, App: "npb-cg"},
		{ID: "b2", Class: ClassReport, App: "npb-ft"},
	}})
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if len(resp.Results) != 3 || resp.Succeeded != 3 || resp.Shed != 0 || resp.Failed != 0 {
		t.Fatalf("bad envelope: %+v", resp)
	}
	for i, it := range resp.Results {
		if it.ID != fmt.Sprintf("b%d", i) {
			t.Errorf("result %d has id %q — results not index-aligned", i, it.ID)
		}
		if it.Status != http.StatusOK || it.Outcome != "ok" || it.Result == nil || it.Result.Summary != "ok" {
			t.Errorf("result %d not ok: %+v", i, it)
		}
	}
	st := s.Stats()
	if st.Batches != 1 || st.Admitted != 3 || st.Completed != 3 {
		t.Fatalf("stats batches=%d admitted=%d completed=%d, want 1/3/3", st.Batches, st.Admitted, st.Completed)
	}
}

// TestServeBatchValidation: structurally bad batches are rejected whole
// (empty, over the cap), while a bad sub-job inside a good batch fails
// only that item — the rest still run.
func TestServeBatchValidation(t *testing.T) {
	s := startServer(t, Config{MaxInflight: 2}, okRunner)

	if code, _ := postBatch(t, s, BatchRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
	big := BatchRequest{Jobs: make([]JobRequest, MaxBatchJobs+1)}
	for i := range big.Jobs {
		big.Jobs[i] = JobRequest{Class: ClassAnalyze, App: "npb-cg"}
	}
	if code, _ := postBatch(t, s, big); code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", code)
	}
	if st := s.Stats(); st.Admitted != 0 {
		t.Fatalf("rejected batches admitted jobs: %+v", st)
	}

	code, resp := postBatch(t, s, BatchRequest{Jobs: []JobRequest{
		{ID: "good", Class: ClassAnalyze, App: "npb-cg"},
		{ID: "bad-class", Class: "mine-bitcoin", App: "x"},
		{ID: "no-app", Class: ClassAnalyze},
	}})
	if code != http.StatusOK {
		t.Fatalf("mixed batch: status %d, want 200", code)
	}
	if resp.Succeeded != 1 || resp.Failed != 2 {
		t.Fatalf("mixed batch envelope: %+v", resp)
	}
	if it := resp.Results[0]; it.Status != http.StatusOK {
		t.Fatalf("good sub-job failed: %+v", it)
	}
	for _, i := range []int{1, 2} {
		if it := resp.Results[i]; it.Status != http.StatusBadRequest || it.Outcome != "bad_request" || it.Error == nil {
			t.Fatalf("bad sub-job %d not rejected per-item: %+v", i, it)
		}
	}
}

// TestServeBatchShedsPerSubJob: with the single worker already busy and
// a one-deep queue, a 2-job batch admits one sub-job and sheds the other
// with the same 429 shed_queue disposition a single request would get —
// batches get no admission bypass.
func TestServeBatchShedsPerSubJob(t *testing.T) {
	br := newBlockingRunner()
	s := startServer(t, Config{MaxInflight: 1, QueueDepth: 1}, br.run)

	holder := make(chan int, 1)
	go func() {
		code, _ := postJob(t, s, JobRequest{ID: "holder", Class: ClassAnalyze, App: "npb-cg"})
		holder <- code
	}()
	<-br.started // the only worker is now busy; the queue is empty

	done := make(chan BatchResponse, 1)
	go func() {
		_, resp := postBatch(t, s, BatchRequest{Jobs: []JobRequest{
			{ID: "b0", Class: ClassAnalyze, App: "npb-cg"},
			{ID: "b1", Class: ClassAnalyze, App: "npb-cg"},
		}})
		done <- resp
	}()
	waitFor(t, func() bool { return s.Stats().ShedQueue == 1 })
	close(br.release)
	resp := <-done

	if <-holder != http.StatusOK {
		t.Fatal("holder job failed")
	}
	if resp.Succeeded != 1 || resp.Shed != 1 {
		t.Fatalf("envelope %+v, want 1 succeeded + 1 shed", resp)
	}
	if it := resp.Results[0]; it.Status != http.StatusOK || it.Outcome != "ok" {
		t.Fatalf("queued sub-job did not finish: %+v", it)
	}
	shed := resp.Results[1]
	if shed.Status != http.StatusTooManyRequests || shed.Outcome != "shed_queue" ||
		shed.Error == nil || shed.Error.RetryAfterMS <= 0 {
		t.Fatalf("second sub-job not shed like a single request: %+v", shed)
	}
	if st := s.Stats(); st.ShedQueue != 1 || st.Completed != 2 {
		t.Fatalf("stats %+v, want shed_queue=1 completed=2", st)
	}
}

// TestServeBatchDrainMidBatch: draining while a batch is half-done
// finishes nothing new — the running sub-job is canceled, queued ones
// are flushed as drained and journaled — and the batch response still
// arrives with every disposition accounted.
func TestServeBatchDrainMidBatch(t *testing.T) {
	br := newBlockingRunner()
	s := New(Config{
		MaxInflight: 1, QueueDepth: 4,
		DrainDeadline: 300 * time.Millisecond,
	}, br.run)
	s.Start()

	done := make(chan BatchResponse, 1)
	go func() {
		_, resp := postBatch(t, s, BatchRequest{Jobs: []JobRequest{
			{ID: "b0", Class: ClassAnalyze, App: "npb-cg"},
			{ID: "b1", Class: ClassAnalyze, App: "npb-cg"},
			{ID: "b2", Class: ClassAnalyze, App: "npb-cg"},
		}})
		done <- resp
	}()
	<-br.started // one sub-job running...
	waitFor(t, func() bool { return s.Stats().Queued == 2 })

	ds := s.Drain()
	if ds.Clean {
		t.Fatal("drain reported clean with batch sub-jobs stuck")
	}
	resp := <-done
	if len(resp.Results) != 3 || resp.Succeeded != 0 {
		t.Fatalf("envelope %+v, want 3 results, none succeeded", resp)
	}
	outcomes := map[string]int{}
	for _, it := range resp.Results {
		outcomes[it.Outcome]++
	}
	if outcomes["drained"] != 2 || outcomes["canceled"] != 1 {
		t.Fatalf("outcomes %v, want 2 drained + 1 canceled", outcomes)
	}
	if ds.JournaledQueued != 2 || ds.JournaledRunning != 1 {
		t.Fatalf("journaled queued=%d running=%d, want 2/1", ds.JournaledQueued, ds.JournaledRunning)
	}

	// New batches shed whole while draining: every sub-job is shed_drain.
	code, resp := postBatch(t, s, BatchRequest{Jobs: []JobRequest{
		{Class: ClassAnalyze, App: "npb-cg"},
	}})
	if code != http.StatusOK || resp.Shed != 1 || resp.Results[0].Outcome != "shed_drain" {
		t.Fatalf("batch while draining: %d %+v, want shed_drain sub-job", code, resp)
	}
}
