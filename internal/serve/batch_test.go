package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// postBatch drives POST /v1/batch directly: returns the HTTP status and
// the decoded envelope (zero-valued on non-200).
func postBatch(t *testing.T, s *Server, breq BatchRequest) (int, BatchResponse) {
	t.Helper()
	body, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body)))
	var resp BatchResponse
	if w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad batch body %q: %v", w.Body.String(), err)
		}
	}
	return w.Code, resp
}

// TestServeBatchOK: a well-formed batch runs every sub-job, returns
// index-aligned per-job results, and counts once in the Batches stat
// while each sub-job counts individually in Admitted/Completed.
func TestServeBatchOK(t *testing.T) {
	s := startServer(t, Config{MaxInflight: 2}, okRunner)
	code, resp := postBatch(t, s, BatchRequest{Jobs: []JobRequest{
		{ID: "b0", Class: ClassAnalyze, App: "npb-cg"},
		{ID: "b1", Class: ClassSimulate, App: "npb-cg"},
		{ID: "b2", Class: ClassReport, App: "npb-ft"},
	}})
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if len(resp.Results) != 3 || resp.Succeeded != 3 || resp.Shed != 0 || resp.Failed != 0 {
		t.Fatalf("bad envelope: %+v", resp)
	}
	for i, it := range resp.Results {
		if it.ID != fmt.Sprintf("b%d", i) {
			t.Errorf("result %d has id %q — results not index-aligned", i, it.ID)
		}
		if it.Status != http.StatusOK || it.Outcome != "ok" || it.Result == nil || it.Result.Summary != "ok" {
			t.Errorf("result %d not ok: %+v", i, it)
		}
	}
	st := s.Stats()
	if st.Batches != 1 || st.Admitted != 3 || st.Completed != 3 {
		t.Fatalf("stats batches=%d admitted=%d completed=%d, want 1/3/3", st.Batches, st.Admitted, st.Completed)
	}
}

// TestServeBatchValidation: structurally bad batches are rejected whole
// (empty, over the cap), while a bad sub-job inside a good batch fails
// only that item — the rest still run.
func TestServeBatchValidation(t *testing.T) {
	s := startServer(t, Config{MaxInflight: 2}, okRunner)

	if code, _ := postBatch(t, s, BatchRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
	big := BatchRequest{Jobs: make([]JobRequest, MaxBatchJobs+1)}
	for i := range big.Jobs {
		big.Jobs[i] = JobRequest{Class: ClassAnalyze, App: "npb-cg"}
	}
	if code, _ := postBatch(t, s, big); code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", code)
	}
	if st := s.Stats(); st.Admitted != 0 {
		t.Fatalf("rejected batches admitted jobs: %+v", st)
	}

	code, resp := postBatch(t, s, BatchRequest{Jobs: []JobRequest{
		{ID: "good", Class: ClassAnalyze, App: "npb-cg"},
		{ID: "bad-class", Class: "mine-bitcoin", App: "x"},
		{ID: "no-app", Class: ClassAnalyze},
	}})
	if code != http.StatusOK {
		t.Fatalf("mixed batch: status %d, want 200", code)
	}
	if resp.Succeeded != 1 || resp.Failed != 2 {
		t.Fatalf("mixed batch envelope: %+v", resp)
	}
	if it := resp.Results[0]; it.Status != http.StatusOK {
		t.Fatalf("good sub-job failed: %+v", it)
	}
	for _, i := range []int{1, 2} {
		if it := resp.Results[i]; it.Status != http.StatusBadRequest || it.Outcome != "bad_request" || it.Error == nil {
			t.Fatalf("bad sub-job %d not rejected per-item: %+v", i, it)
		}
	}
}

// TestServeBatchShedsPerSubJob: with the single worker already busy and
// a one-deep queue, a 2-job batch admits one sub-job and sheds the other
// with the same 429 shed_queue disposition a single request would get —
// batches get no admission bypass.
func TestServeBatchShedsPerSubJob(t *testing.T) {
	br := newBlockingRunner()
	s := startServer(t, Config{MaxInflight: 1, QueueDepth: 1}, br.run)

	holder := make(chan int, 1)
	go func() {
		code, _ := postJob(t, s, JobRequest{ID: "holder", Class: ClassAnalyze, App: "npb-cg"})
		holder <- code
	}()
	<-br.started // the only worker is now busy; the queue is empty

	done := make(chan BatchResponse, 1)
	go func() {
		_, resp := postBatch(t, s, BatchRequest{Jobs: []JobRequest{
			{ID: "b0", Class: ClassAnalyze, App: "npb-cg"},
			{ID: "b1", Class: ClassAnalyze, App: "npb-cg"},
		}})
		done <- resp
	}()
	waitFor(t, func() bool { return s.Stats().ShedQueue == 1 })
	close(br.release)
	resp := <-done

	if <-holder != http.StatusOK {
		t.Fatal("holder job failed")
	}
	if resp.Succeeded != 1 || resp.Shed != 1 {
		t.Fatalf("envelope %+v, want 1 succeeded + 1 shed", resp)
	}
	if it := resp.Results[0]; it.Status != http.StatusOK || it.Outcome != "ok" {
		t.Fatalf("queued sub-job did not finish: %+v", it)
	}
	shed := resp.Results[1]
	if shed.Status != http.StatusTooManyRequests || shed.Outcome != "shed_queue" ||
		shed.Error == nil || shed.Error.RetryAfterMS <= 0 {
		t.Fatalf("second sub-job not shed like a single request: %+v", shed)
	}
	if st := s.Stats(); st.ShedQueue != 1 || st.Completed != 2 {
		t.Fatalf("stats %+v, want shed_queue=1 completed=2", st)
	}
}

// TestServeBatchDrainMidBatch: draining while a batch is half-done
// finishes nothing new — the running sub-job is canceled, queued ones
// are flushed as drained and journaled — and the batch response still
// arrives with every disposition accounted.
func TestServeBatchDrainMidBatch(t *testing.T) {
	br := newBlockingRunner()
	s := New(Config{
		MaxInflight: 1, QueueDepth: 4,
		DrainDeadline: 300 * time.Millisecond,
	}, br.run)
	s.Start()

	done := make(chan BatchResponse, 1)
	go func() {
		_, resp := postBatch(t, s, BatchRequest{Jobs: []JobRequest{
			{ID: "b0", Class: ClassAnalyze, App: "npb-cg"},
			{ID: "b1", Class: ClassAnalyze, App: "npb-cg"},
			{ID: "b2", Class: ClassAnalyze, App: "npb-cg"},
		}})
		done <- resp
	}()
	<-br.started // one sub-job running...
	waitFor(t, func() bool { return s.Stats().Queued == 2 })

	ds := s.Drain()
	if ds.Clean {
		t.Fatal("drain reported clean with batch sub-jobs stuck")
	}
	resp := <-done
	if len(resp.Results) != 3 || resp.Succeeded != 0 {
		t.Fatalf("envelope %+v, want 3 results, none succeeded", resp)
	}
	outcomes := map[string]int{}
	for _, it := range resp.Results {
		outcomes[it.Outcome]++
	}
	if outcomes["drained"] != 2 || outcomes["canceled"] != 1 {
		t.Fatalf("outcomes %v, want 2 drained + 1 canceled", outcomes)
	}
	if ds.JournaledQueued != 2 || ds.JournaledRunning != 1 {
		t.Fatalf("journaled queued=%d running=%d, want 2/1", ds.JournaledQueued, ds.JournaledRunning)
	}

	// New batches shed whole while draining: every sub-job is shed_drain.
	code, resp := postBatch(t, s, BatchRequest{Jobs: []JobRequest{
		{Class: ClassAnalyze, App: "npb-cg"},
	}})
	if code != http.StatusOK || resp.Shed != 1 || resp.Results[0].Outcome != "shed_drain" {
		t.Fatalf("batch while draining: %d %+v, want shed_drain sub-job", code, resp)
	}
}

// TestServeBatchHalfOpenProbeAdmission: a batch arriving while its job
// class's breaker is half-open gets exactly HalfOpenProbes sub-jobs
// through — the probe — and sheds the rest with shed_breaker, results
// index-aligned with the request. The probe's success closes the
// breaker for the next batch. This pins the interaction between the
// breaker's bounded half-open probing and /v1/batch's admit-everything-
// first loop: a wide batch must not consume more probe slots than a
// stream of single requests would.
func TestServeBatchHalfOpenProbeAdmission(t *testing.T) {
	clk := newFakeClock()
	br := newBlockingRunner()
	run := func(ctx context.Context, req *JobRequest) (*JobResult, error) {
		if req.App == "boom" {
			return nil, fmt.Errorf("dependency down")
		}
		return br.run(ctx, req)
	}
	s := startServer(t, Config{MaxInflight: 2, QueueDepth: 8,
		Breaker: BreakerOpts{FailureThreshold: 1, OpenFor: 10 * time.Second, HalfOpenProbes: 1, Now: clk.Now},
	}, run)

	// Trip the analyze breaker, then advance past the open hold so the
	// next admission probes half-open.
	if code, _ := postJob(t, s, JobRequest{Class: ClassAnalyze, App: "boom"}); code != http.StatusInternalServerError {
		t.Fatalf("trip job: status %d", code)
	}
	clk.Advance(11 * time.Second)

	done := make(chan BatchResponse, 1)
	go func() {
		_, resp := postBatch(t, s, BatchRequest{Jobs: []JobRequest{
			{ID: "p0", Class: ClassAnalyze, App: "npb-cg"},
			{ID: "p1", Class: ClassAnalyze, App: "npb-cg"},
			{ID: "p2", Class: ClassAnalyze, App: "npb-ft"},
			{ID: "p3", Class: ClassAnalyze, App: "npb-is"},
		}})
		done <- resp
	}()
	<-br.started // the probe sub-job is running; its siblings were shed
	if st := s.Stats(); st.Admitted != 2 || st.ShedBreaker != 3 {
		t.Fatalf("stats %+v, want exactly one probe admitted and 3 shed", st)
	}
	close(br.release)
	resp := <-done

	if resp.Succeeded != 1 || resp.Shed != 3 {
		t.Fatalf("envelope %+v, want 1 succeeded + 3 shed", resp)
	}
	if it := resp.Results[0]; it.ID != "p0" || it.Outcome != "ok" {
		t.Fatalf("probe slot should go to the first sub-job: %+v", it)
	}
	for i, it := range resp.Results[1:] {
		if it.Status != http.StatusServiceUnavailable || it.Outcome != "shed_breaker" ||
			it.Error == nil || it.Error.Breaker != "half-open" {
			t.Fatalf("sub-job %d not shed by the half-open breaker: %+v", i+1, it)
		}
		if it.ID != fmt.Sprintf("p%d", i+1) {
			t.Fatalf("results not index-aligned: slot %d carries %q", i+1, it.ID)
		}
	}
	// The successful probe closed the breaker: a follow-up batch admits
	// every sub-job.
	if b := s.Breaker(ClassAnalyze); b.State() != BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", b.State())
	}
	_, resp = postBatch(t, s, BatchRequest{Jobs: []JobRequest{
		{Class: ClassAnalyze, App: "npb-cg"},
		{Class: ClassAnalyze, App: "npb-ft"},
	}})
	if resp.Succeeded != 2 {
		t.Fatalf("post-close batch %+v, want both sub-jobs to run", resp)
	}
}

// TestServeBatchHalfOpenProbeRace: two batches racing into a half-open
// breaker still admit exactly one probe between them — concurrent batch
// admission loops cannot widen the probe window.
func TestServeBatchHalfOpenProbeRace(t *testing.T) {
	clk := newFakeClock()
	br := newBlockingRunner()
	run := func(ctx context.Context, req *JobRequest) (*JobResult, error) {
		if req.App == "boom" {
			return nil, fmt.Errorf("dependency down")
		}
		return br.run(ctx, req)
	}
	s := startServer(t, Config{MaxInflight: 2, QueueDepth: 16,
		Breaker: BreakerOpts{FailureThreshold: 1, OpenFor: 10 * time.Second, HalfOpenProbes: 1, Now: clk.Now},
	}, run)
	if code, _ := postJob(t, s, JobRequest{Class: ClassAnalyze, App: "boom"}); code != http.StatusInternalServerError {
		t.Fatalf("trip job: status %d", code)
	}
	clk.Advance(11 * time.Second)

	const jobsPerBatch = 4
	results := make(chan BatchResponse, 2)
	for b := 0; b < 2; b++ {
		go func() {
			_, resp := postBatch(t, s, BatchRequest{Jobs: []JobRequest{
				{Class: ClassAnalyze, App: "npb-cg"},
				{Class: ClassAnalyze, App: "npb-cg"},
				{Class: ClassAnalyze, App: "npb-ft"},
				{Class: ClassAnalyze, App: "npb-is"},
			}})
			results <- resp
		}()
	}
	<-br.started // exactly one probe is running across both batches
	waitFor(t, func() bool { return s.Stats().ShedBreaker == 2*jobsPerBatch-1 })
	close(br.release)

	succeeded, shed := 0, 0
	for b := 0; b < 2; b++ {
		resp := <-results
		succeeded += resp.Succeeded
		shed += resp.Shed
	}
	if succeeded != 1 || shed != 2*jobsPerBatch-1 {
		t.Fatalf("across racing batches: %d succeeded, %d shed; want exactly 1 probe through", succeeded, shed)
	}
	if st := s.Stats(); st.Admitted != 2 {
		t.Fatalf("stats %+v: the breaker admitted more than the probe", st)
	}
}
