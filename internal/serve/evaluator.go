package serve

import (
	"context"
	"fmt"

	"looppoint/internal/harness"
	"looppoint/internal/omp"
	"looppoint/internal/timing"
	"looppoint/internal/workloads"
)

// EvaluatorRunner adapts a harness.Evaluator into the server's RunFunc:
// the daemon's job classes map onto the evaluator's memoized entry
// points, so repeated requests for the same workload hit the evaluator
// cache (and its resume journal) instead of recomputing.
//
//   - analyze  → AnalyzeOnlyCtx: profile + cluster + select, no timing.
//   - simulate → ReportCtx with Full forced off: sampled simulation and
//     extrapolation only (the cheap production shape).
//   - report   → ReportCtx honoring req.Full: optionally simulates the
//     whole program too, for error reporting.
//
// The per-request deadline context flows through the evaluator into
// core's region sweep, so an expiring request stops at the next region
// boundary instead of finishing doomed work.
func EvaluatorRunner(e *harness.Evaluator) RunFunc {
	return func(ctx context.Context, req *JobRequest) (*JobResult, error) {
		policy := omp.Passive
		if req.Policy != "" {
			p, err := omp.ParseWaitPolicy(req.Policy)
			if err != nil {
				return nil, err
			}
			policy = p
		}
		core := timing.OOO
		switch req.Core {
		case "", "ooo":
		case "inorder":
			core = timing.InOrder
		default:
			return nil, fmt.Errorf("serve: unknown core model %q (want ooo or inorder)", req.Core)
		}
		input := workloads.InputClass(req.Input)
		if req.Input == "" {
			input = workloads.InputTrain
		}
		threads := req.Threads
		if threads < 0 {
			return nil, fmt.Errorf("serve: negative thread count %d", threads)
		}

		res := &JobResult{ID: req.ID, Class: req.Class, App: req.App}
		if req.Class == ClassAnalyze {
			sel, _, err := e.AnalyzeOnlyCtx(ctx, req.App, policy, input, threads)
			if err != nil {
				return nil, err
			}
			res.Regions = len(sel.Analysis.Profile.Regions)
			res.Points = len(sel.Points)
			res.Summary = fmt.Sprintf("%s: %d regions, %d looppoints", req.App, res.Regions, res.Points)
			return res, nil
		}

		full := req.Full && req.Class == ClassReport
		rep, err := e.ReportCtx(ctx, harness.ReportKey{
			App: req.App, Policy: policy, Input: input,
			Threads: threads, Core: core, Full: full,
		})
		if err != nil {
			return nil, err
		}
		res.Regions = len(rep.Selection.Analysis.Profile.Regions)
		res.Points = len(rep.Selection.Points)
		res.PredictedSeconds = rep.Predicted.Seconds
		res.PredictedCycles = rep.Predicted.Cycles
		res.RuntimeErrPct = rep.RuntimeErrPct
		if rep.Degradation.Degraded() {
			res.Degraded = true
			res.ResidualCoverage = rep.Degradation.ResidualCoverage
		}
		res.Summary = rep.Summary()
		return res, nil
	}
}
