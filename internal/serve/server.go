// Package serve is the request-serving resilience layer: it turns the
// batch sampling pipeline (harness.Evaluator, core.SimulateRegions*,
// internal/pool) into a long-lived daemon that stays up under load and
// failure. The stack is the standard serving shape — admission control
// with a bounded queue and explicit load shedding (429 + Retry-After),
// a per-job-class circuit breaker (closed/open/half-open under an
// injected clock), per-request deadlines propagated as contexts through
// every layer below, a server-wide retry *budget* so client retries
// cannot amplify overload, and graceful drain on SIGTERM: stop
// admitting, finish in-flight work up to a drain deadline, and
// checkpoint whatever could not finish so an operator can resubmit it.
// DESIGN.md §11 states the invariants; cmd/lpserved is the binary.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"looppoint/internal/core"
	"looppoint/internal/faults"
	"looppoint/internal/pool"
)

// Job classes. Each gets its own circuit breaker: a failing full-report
// dependency must not stop cheap analyses from serving.
const (
	ClassAnalyze  = "analyze"  // profile + cluster + select, no timing simulation
	ClassSimulate = "simulate" // full pipeline, extrapolation only
	ClassReport   = "report"   // full pipeline, honoring Full for error reporting
)

// JobClasses lists every class the server admits.
var JobClasses = []string{ClassAnalyze, ClassSimulate, ClassReport}

// Serving defaults.
const (
	DefaultQueueDepthFactor = 2                // queue depth = factor × max-inflight
	DefaultDeadline         = 2 * time.Minute  // per-request deadline when the client sets none
	DefaultMaxDeadline      = 10 * time.Minute // cap on client-requested deadlines
	DefaultDrainDeadline    = 30 * time.Second // SIGTERM → forced-checkpoint bound
	DefaultMaxRetries       = 3                // cap on client-requested extra attempts
	DefaultRetryBackoff     = 25 * time.Millisecond
	DefaultRetryMaxBackoff  = 2 * time.Second
)

// ErrDraining rejects work because the server is shutting down.
var ErrDraining = errors.New("serve: draining, not admitting jobs")

// TimeoutError is the typed deadline failure: the job did not finish
// within its per-request deadline, either because it never left the
// queue ("queued") or because the work itself ran long ("running").
type TimeoutError struct {
	Phase    string
	Deadline time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("serve: job deadline %v exceeded while %s", e.Deadline, e.Phase)
}

// JobRequest is the JSON body of POST /v1/jobs.
type JobRequest struct {
	// ID is the client's correlation id (a server id is minted if empty).
	ID string `json:"id,omitempty"`
	// Class selects the pipeline: analyze, simulate, or report.
	Class string `json:"class"`
	// App names the workload (e.g. "603.bwaves_s.1", "npb-cg").
	App string `json:"app"`
	// Input is the input class (train, ref, test, C, D…); empty uses the
	// evaluator's default for the class.
	Input string `json:"input,omitempty"`
	// Threads is the thread count (0: the evaluator's default).
	Threads int `json:"threads,omitempty"`
	// Policy is the OMP wait policy: "passive" (default) or "active".
	Policy string `json:"policy,omitempty"`
	// Core selects the core model: "ooo" (default) or "inorder".
	Core string `json:"core,omitempty"`
	// Full additionally runs the whole-program simulation for error
	// reporting (report class only).
	Full bool `json:"full,omitempty"`
	// DeadlineMS is the client's deadline for the whole request,
	// including queue wait (0: server default; capped at the server max).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Retries is how many extra attempts the client wants on failure.
	// The server clamps it (MaxRetries) and charges each retry to the
	// shared retry budget, so retries never amplify an overload.
	Retries int `json:"retries,omitempty"`
}

// JobResult is the success payload of POST /v1/jobs.
type JobResult struct {
	ID      string `json:"id"`
	Class   string `json:"class"`
	App     string `json:"app"`
	Summary string `json:"summary"`

	Regions int `json:"regions"`
	Points  int `json:"points"`

	PredictedSeconds float64 `json:"predicted_seconds,omitempty"`
	PredictedCycles  float64 `json:"predicted_cycles,omitempty"`
	RuntimeErrPct    float64 `json:"runtime_err_pct,omitempty"`

	Degraded         bool    `json:"degraded,omitempty"`
	ResidualCoverage float64 `json:"residual_coverage,omitempty"`

	// Filled by the server.
	QueueWaitMS int64 `json:"queue_wait_ms"`
	RunMS       int64 `json:"run_ms"`
	Attempts    int   `json:"attempts"`
}

// RunFunc executes one admitted job under its deadline context.
type RunFunc func(ctx context.Context, req *JobRequest) (*JobResult, error)

// Config tunes the server. Zero values take the defaults above.
type Config struct {
	// MaxInflight bounds concurrently running jobs (0: one per CPU).
	MaxInflight int
	// QueueDepth bounds admitted-but-waiting jobs; beyond it requests are
	// shed with 429 (0: DefaultQueueDepthFactor × MaxInflight).
	QueueDepth int
	// DefaultDeadline applies when the client sets none.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines.
	MaxDeadline time.Duration
	// DrainDeadline bounds Drain: in-flight work past it is cancelled and
	// checkpointed instead of awaited forever.
	DrainDeadline time.Duration
	// MaxRetries caps per-job client-requested extra attempts.
	MaxRetries int
	// RetryBudget / RetryRatio configure the shared retry token bucket
	// (see Budget). RetryBudget < 0 disables retries outright.
	RetryBudget float64
	RetryRatio  float64
	// RetryBackoff / RetryMaxBackoff shape the jittered backoff between
	// job attempts.
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration
	// Breaker configures every class's circuit breaker (each class gets
	// its own instance).
	Breaker BreakerOpts
	// PendingPath, when set, receives the JSONL checkpoint of jobs that
	// could not drain (see Drain).
	PendingPath string
	// Progress, when set, is the shared durable-progress counter sink the
	// evaluations below report into (core.Config.Progress). The server
	// only reads it: /v1/stats exposes the totals and each job's log line
	// carries the deltas observed while that job ran.
	Progress *core.ProgressStats
	// Log receives the structured per-request lines (nil: discard).
	Log io.Writer
	// Now is the injected clock for queue-wait/run-time measurement
	// (nil: time.Now). The breaker clock is Breaker.Now.
	Now func() time.Time
}

func (c Config) fill() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = pool.DefaultWidth()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepthFactor * c.MaxInflight
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = DefaultDeadline
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = DefaultMaxDeadline
	}
	if c.DrainDeadline <= 0 {
		c.DrainDeadline = DefaultDrainDeadline
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = DefaultRetryBudget
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	if c.RetryMaxBackoff <= 0 {
		c.RetryMaxBackoff = DefaultRetryMaxBackoff
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// jobDone carries one job's terminal state from worker to handler.
type jobDone struct {
	res      *JobResult
	err      error
	attempts int
	wait     time.Duration
	run      time.Duration
	// prog is the pre-rendered durable-progress delta observed while this
	// job ran (empty without Config.Progress), appended to the log line.
	prog string
}

// job is one admitted request in flight through the queue.
type job struct {
	id       uint64
	req      *JobRequest
	ctx      context.Context
	cancel   context.CancelFunc
	deadline time.Duration
	breaker  *Breaker
	enq      time.Time
	started  atomic.Bool
	done     chan jobDone // buffered 1: the worker never blocks on a gone handler
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	Admitted    uint64 `json:"admitted"`
	Batches     uint64 `json:"batches"`
	Claims      uint64 `json:"claims"`
	ClaimDedups uint64 `json:"claim_dedups"`
	Completed   uint64 `json:"completed"`
	Errors      uint64 `json:"errors"`
	Timeouts    uint64 `json:"timeouts"`
	ShedQueue   uint64 `json:"shed_queue"`
	ShedBreaker uint64 `json:"shed_breaker"`
	ShedDrain   uint64 `json:"shed_drain"`
	Journaled   uint64 `json:"journaled"`
	Resubmitted uint64 `json:"resubmitted"`

	// Durable-progress counters (zero unless Config.Progress is set):
	// epoch/region saves, failed saves, successful crash recoveries, the
	// schedule steps those recoveries skipped re-executing, and
	// recovery-ladder falls (progress files rejected as torn/corrupt).
	ProgressSaves        uint64 `json:"progress_saves"`
	ProgressSaveFailures uint64 `json:"progress_save_failures"`
	Recoveries           uint64 `json:"recoveries"`
	RecoveryStepsSaved   uint64 `json:"recovery_steps_saved"`
	LadderFalls          uint64 `json:"ladder_falls"`

	Inflight  int64 `json:"inflight"`
	HighWater int64 `json:"high_water"`
	Queued    int   `json:"queued"`

	RetryTokens   float64 `json:"retry_tokens"`
	RetriesDenied uint64  `json:"retries_denied"`

	Draining bool                    `json:"draining"`
	Breakers map[string]BreakerState `json:"breakers"`
	Trips    map[string]uint64       `json:"breaker_trips"`
}

// DrainStats reports what Drain did.
type DrainStats struct {
	Clean             bool // every admitted job finished within the deadline
	JournaledQueued   int  // queued jobs checkpointed instead of run
	JournaledRunning  int  // running jobs cancelled and checkpointed
	LeakedWorkers     int  // workers still stuck in CPU-bound work at exit
	PendingCheckpoint string
}

// PendingJob is one line of the drain checkpoint: a job the server
// admitted but could not finish, with enough of the spec to resubmit.
type PendingJob struct {
	State string      `json:"state"` // "queued" or "running"
	Job   *JobRequest `json:"job"`
}

// Server is the resilient job-serving daemon core. Build with New,
// start the worker pool with Start, mount Handler on an http.Server,
// and call Drain exactly once on shutdown.
type Server struct {
	cfg      Config
	run      RunFunc
	budget   *Budget
	breakers map[string]*Breaker

	jobs     chan *job
	accepted sync.WaitGroup // admitted jobs not yet terminal
	workers  sync.WaitGroup
	baseCtx  context.Context
	baseStop context.CancelFunc

	draining atomic.Bool
	seq      atomic.Uint64

	activeMu sync.Mutex
	active   map[uint64]*job

	inflight  atomic.Int64
	highWater atomic.Int64

	admitted, completed, errsN, timeouts atomic.Uint64
	shedQueue, shedBreaker, shedDrain    atomic.Uint64
	journaled, batches, resubmitted      atomic.Uint64
	claims, claimDedups                  atomic.Uint64

	claimMu     sync.Mutex
	claimFlight map[string]*claimEntry

	logMu sync.Mutex
}

// New builds a server around run. Call Start before serving requests.
func New(cfg Config, run RunFunc) *Server {
	cfg = cfg.fill()
	s := &Server{
		cfg:         cfg,
		run:         run,
		budget:      NewBudget(cfg.RetryBudget, cfg.RetryRatio),
		breakers:    make(map[string]*Breaker, len(JobClasses)),
		jobs:        make(chan *job, cfg.QueueDepth),
		active:      make(map[uint64]*job),
		claimFlight: make(map[string]*claimEntry),
	}
	for _, class := range JobClasses {
		s.breakers[class] = NewBreaker(class, cfg.Breaker)
	}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	return s
}

// Start launches the MaxInflight worker goroutines.
func (s *Server) Start() {
	for w := 0; w < s.cfg.MaxInflight; w++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for {
				select {
				case <-s.baseCtx.Done():
					return
				case j := <-s.jobs:
					s.runOne(j)
				}
			}
		}()
	}
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// Breaker returns the given class's breaker (nil for unknown classes) —
// observability for tests and the daemon.
func (s *Server) Breaker(class string) *Breaker { return s.breakers[class] }

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Admitted:      s.admitted.Load(),
		Batches:       s.batches.Load(),
		Claims:        s.claims.Load(),
		ClaimDedups:   s.claimDedups.Load(),
		Completed:     s.completed.Load(),
		Errors:        s.errsN.Load(),
		Timeouts:      s.timeouts.Load(),
		ShedQueue:     s.shedQueue.Load(),
		ShedBreaker:   s.shedBreaker.Load(),
		ShedDrain:     s.shedDrain.Load(),
		Journaled:     s.journaled.Load(),
		Resubmitted:   s.resubmitted.Load(),
		Inflight:      s.inflight.Load(),
		HighWater:     s.highWater.Load(),
		Queued:        len(s.jobs),
		RetryTokens:   s.budget.Tokens(),
		RetriesDenied: s.budget.Denied(),
		Draining:      s.draining.Load(),
		Breakers:      make(map[string]BreakerState, len(s.breakers)),
		Trips:         make(map[string]uint64, len(s.breakers)),
	}
	for class, b := range s.breakers {
		st.Breakers[class] = b.State()
		st.Trips[class] = b.Trips()
	}
	st.ProgressSaves, st.ProgressSaveFailures, st.Recoveries,
		st.RecoveryStepsSaved, st.LadderFalls = s.cfg.Progress.Snapshot()
	return st
}

// Handler returns the HTTP API: GET /healthz (liveness + stats), GET
// /readyz (admission readiness), GET /v1/stats (the bare counter
// snapshot, for coordinators and drills), POST /v1/jobs (synchronous
// job run).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "stats": s.Stats()})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	})
	mux.HandleFunc("/v1/jobs", s.handleJob)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/claim", s.handleClaim)
	return mux
}

// MaxBatchJobs caps the jobs in one POST /v1/batch request.
const MaxBatchJobs = 64

// BatchRequest is the JSON body of POST /v1/batch: up to MaxBatchJobs
// job specs admitted and executed as one request.
type BatchRequest struct {
	Jobs []JobRequest `json:"jobs"`
}

// BatchItem is one sub-job's result inside a BatchResponse: the same
// payloads the single-job endpoint returns, wrapped with the HTTP
// status it would have carried.
type BatchItem struct {
	ID      string     `json:"id"`
	Status  int        `json:"status"`
	Outcome string     `json:"outcome"`
	Result  *JobResult `json:"result,omitempty"`
	Error   *errorBody `json:"error,omitempty"`
}

// BatchResponse is the envelope of POST /v1/batch. The HTTP status is
// 200 whenever the batch itself was well-formed; per-sub-job dispositions
// (shed, timeout, error…) are in Results, index-aligned with the
// request's Jobs.
type BatchResponse struct {
	Results   []BatchItem `json:"results"`
	Succeeded int         `json:"succeeded"`
	Shed      int         `json:"shed"`
	Failed    int         `json:"failed"`
}

// handleBatch admits and runs a batch of jobs as one request. Each
// sub-job goes through the exact same admission dance as a single POST
// /v1/jobs — drain check, class breaker, bounded queue — so a batch is
// individually sheddable per sub-job: an open breaker or a full queue
// sheds some items while the rest run. Admitted sub-jobs execute
// concurrently (bounded by the worker pool, like any other jobs) and
// share the evaluator's memoization, so batches repeating a workload
// decode and analyze it once. Drain mid-batch finishes or journals each
// sub-job individually; the batch response reports every disposition.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var breq BatchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&breq); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Outcome: "bad_request", Error: "bad JSON: " + err.Error()})
		return
	}
	if len(breq.Jobs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Outcome: "bad_request", Error: "empty batch"})
		return
	}
	if len(breq.Jobs) > MaxBatchJobs {
		writeJSON(w, http.StatusBadRequest, errorBody{Outcome: "bad_request",
			Error: fmt.Sprintf("batch of %d jobs exceeds the %d-job cap", len(breq.Jobs), MaxBatchJobs)})
		return
	}
	s.batches.Add(1)

	// Admit every sub-job first (admission is fast and non-blocking), so
	// the whole batch is enqueued before any awaiting starts: sub-jobs
	// behind a wide batch overlap on the worker pool instead of
	// serializing behind their siblings' completions.
	items := make([]BatchItem, len(breq.Jobs))
	admitted := make([]*job, len(breq.Jobs))
	for i := range breq.Jobs {
		req := &breq.Jobs[i]
		if bad := s.validateJob(req); bad != nil {
			items[i] = batchItem(req.ID, *bad)
			continue
		}
		j, shed := s.admit(r.Context(), req)
		if shed != nil {
			items[i] = batchItem(req.ID, *shed)
			continue
		}
		admitted[i] = j
	}
	var wg sync.WaitGroup
	for i, j := range admitted {
		if j == nil {
			continue
		}
		wg.Add(1)
		go func(i int, j *job) {
			defer wg.Done()
			items[i] = batchItem(j.req.ID, s.awaitJob(j))
		}(i, j)
	}
	wg.Wait()

	resp := BatchResponse{Results: items}
	for _, it := range items {
		switch {
		case it.Status == http.StatusOK:
			resp.Succeeded++
		case strings.HasPrefix(it.Outcome, "shed_") || it.Outcome == "drained":
			resp.Shed++
		default:
			resp.Failed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchItem wraps one sub-job's outcome for the batch envelope.
func batchItem(id string, o jobOutcome) BatchItem {
	it := BatchItem{ID: id, Status: o.status}
	if o.res != nil {
		it.Outcome = "ok"
		it.Result = o.res
		return it
	}
	eb := o.errB
	it.Outcome = eb.Outcome
	it.Error = &eb
	return it
}

// errorBody is the JSON envelope for every non-200 job response.
type errorBody struct {
	Outcome      string `json:"outcome"`
	Error        string `json:"error"`
	Timeout      bool   `json:"timeout,omitempty"`
	Journaled    bool   `json:"journaled,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	Breaker      string `json:"breaker,omitempty"`
}

// jobOutcome is one job's HTTP-renderable terminal state: a success
// payload or a typed error body plus status. The single-job handler
// writes it as the whole response; the batch handler embeds one per
// sub-job.
type jobOutcome struct {
	status int
	res    *JobResult // non-nil on success (status 200)
	errB   errorBody
}

// writeOutcome renders a jobOutcome as the whole HTTP response.
func writeOutcome(w http.ResponseWriter, o jobOutcome) {
	if o.errB.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(time.Duration(o.errB.RetryAfterMS)*time.Millisecond))
	}
	if o.res != nil {
		writeJSON(w, o.status, o.res)
		return
	}
	writeJSON(w, o.status, o.errB)
}

// validateJob rejects structurally bad job specs before admission.
func (s *Server) validateJob(req *JobRequest) *jobOutcome {
	if s.breakers[req.Class] == nil {
		return &jobOutcome{status: http.StatusBadRequest, errB: errorBody{Outcome: "bad_request",
			Error: fmt.Sprintf("unknown class %q (want one of %v)", req.Class, JobClasses)}}
	}
	if req.App == "" {
		return &jobOutcome{status: http.StatusBadRequest, errB: errorBody{Outcome: "bad_request", Error: "missing app"}}
	}
	return nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req JobRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Outcome: "bad_request", Error: "bad JSON: " + err.Error()})
		return
	}
	if bad := s.validateJob(&req); bad != nil {
		writeOutcome(w, *bad)
		return
	}
	j, shed := s.admit(r.Context(), &req)
	if shed != nil {
		writeOutcome(w, *shed)
		return
	}
	writeOutcome(w, s.awaitJob(j))
}

// admit runs the admission dance for one validated job, in shed-priority
// order: drain beats breaker beats queue. On success the job is queued
// and the caller must consume it with awaitJob (which releases the
// deadline context); a non-nil jobOutcome means the job was shed and
// nothing was enqueued. The accepted.Add happens before the draining
// re-check so Drain's Wait provably covers every job that can still
// reach the queue.
func (s *Server) admit(httpCtx context.Context, req *JobRequest) (*job, *jobOutcome) {
	id := s.seq.Add(1)
	if req.ID == "" {
		req.ID = fmt.Sprintf("job-%d", id)
	}
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
	}
	br := s.breakers[req.Class]

	if s.draining.Load() {
		s.shedDrain.Add(1)
		s.logLine(req, id, "shed_drain", br, 0, 0, 0, ErrDraining)
		return nil, &jobOutcome{status: http.StatusServiceUnavailable,
			errB: errorBody{Outcome: "shed_drain", Error: ErrDraining.Error()}}
	}
	if err := br.Allow(); err != nil {
		var open *BreakerOpenError
		errors.As(err, &open)
		s.shedBreaker.Add(1)
		s.logLine(req, id, "shed_breaker", br, 0, 0, 0, err)
		return nil, &jobOutcome{status: http.StatusServiceUnavailable, errB: errorBody{
			Outcome: "shed_breaker", Error: err.Error(),
			RetryAfterMS: open.RetryAfter.Milliseconds(), Breaker: open.State.String(),
		}}
	}

	ctx, cancel := context.WithTimeout(httpCtx, deadline)
	j := &job{
		id: id, req: req, ctx: ctx, cancel: cancel,
		deadline: deadline, breaker: br,
		enq:  s.cfg.Now(),
		done: make(chan jobDone, 1),
	}
	s.accepted.Add(1)
	if s.draining.Load() {
		// Raced with Drain after the first check: undo and shed.
		s.accepted.Done()
		cancel()
		br.Forget()
		s.shedDrain.Add(1)
		s.logLine(req, id, "shed_drain", br, 0, 0, 0, ErrDraining)
		return nil, &jobOutcome{status: http.StatusServiceUnavailable,
			errB: errorBody{Outcome: "shed_drain", Error: ErrDraining.Error()}}
	}
	select {
	case s.jobs <- j:
	default:
		// Queue full: shed explicitly instead of queuing unboundedly.
		s.accepted.Done()
		cancel()
		br.Forget()
		s.shedQueue.Add(1)
		retry := s.cfg.DefaultDeadline / 4
		s.logLine(req, id, "shed_queue", br, 0, 0, 0, errors.New("queue full"))
		return nil, &jobOutcome{status: http.StatusTooManyRequests, errB: errorBody{
			Outcome: "shed_queue", Error: "job queue full", RetryAfterMS: retry.Milliseconds(),
		}}
	}
	s.admitted.Add(1)
	s.budget.Deposit()
	return j, nil
}

// awaitJob blocks until an admitted job reaches a terminal state and
// classifies it. Exactly one awaitJob call must follow each successful
// admit.
func (s *Server) awaitJob(j *job) jobOutcome {
	defer j.cancel()
	br := j.breaker
	select {
	case d := <-j.done:
		return s.finishOutcome(j, d)
	case <-j.ctx.Done():
		// Deadline, drain, or client gone while the worker still owns the
		// job. A terminal state may have raced in just before the wakeup
		// (drain cancels the context it is about to answer) — prefer it.
		select {
		case d := <-j.done:
			return s.finishOutcome(j, d)
		default:
		}
		phase := "queued"
		if j.started.Load() {
			phase = "running"
		}
		wait := s.cfg.Now().Sub(j.enq)
		if errors.Is(j.ctx.Err(), context.DeadlineExceeded) {
			terr := &TimeoutError{Phase: phase, Deadline: j.deadline}
			s.timeouts.Add(1)
			br.Done(false) // a dependency answering late is a failing dependency
			s.logLine(j.req, j.id, "timeout", br, wait, 0, 0, terr)
			return jobOutcome{status: http.StatusGatewayTimeout,
				errB: errorBody{Outcome: "timeout", Error: terr.Error(), Timeout: true}}
		}
		if s.draining.Load() {
			// Drain cancelled the job; its terminal state (drained for a
			// flushed queued job, canceled for an interrupted running one)
			// arrives as soon as the worker observes the cancellation.
			// Bounded wait so a cancellation-deaf RunFunc cannot wedge the
			// handler past the drain window.
			t := time.NewTimer(s.cfg.DrainDeadline)
			defer t.Stop()
			select {
			case d := <-j.done:
				return s.finishOutcome(j, d)
			case <-t.C:
				br.Forget()
				s.logLine(j.req, j.id, "drained", br, wait, 0, 0, ErrDraining)
				return jobOutcome{status: http.StatusServiceUnavailable,
					errB: errorBody{Outcome: "drained", Error: ErrDraining.Error()}}
			}
		}
		// Client disconnected: outcome unknowable, neutral for the breaker.
		// The response body goes nowhere on a real disconnect; rendering it
		// anyway keeps the batch path (whose sub-jobs share the batch
		// request's context) uniform.
		br.Forget()
		s.logLine(j.req, j.id, "canceled", br, wait, 0, 0, j.ctx.Err())
		return jobOutcome{status: http.StatusServiceUnavailable,
			errB: errorBody{Outcome: "canceled", Error: j.ctx.Err().Error()}}
	}
}

// finishOutcome classifies a worker-delivered terminal state.
func (s *Server) finishOutcome(j *job, d jobDone) jobOutcome {
	br := j.breaker
	switch {
	case d.err == nil:
		s.completed.Add(1)
		br.Done(true)
		d.res.QueueWaitMS = d.wait.Milliseconds()
		d.res.RunMS = d.run.Milliseconds()
		d.res.Attempts = d.attempts
		s.logLineX(j.req, j.id, "ok", br, d.wait, d.run, d.attempts, nil, d.prog)
		return jobOutcome{status: http.StatusOK, res: d.res}
	case errors.Is(d.err, ErrDraining):
		// Flushed by Drain: checkpointed, not a dependency failure.
		s.shedDrain.Add(1)
		br.Forget()
		s.logLine(j.req, j.id, "drained", br, d.wait, d.run, d.attempts, d.err)
		return jobOutcome{status: http.StatusServiceUnavailable, errB: errorBody{
			Outcome: "drained", Error: d.err.Error(), Journaled: s.cfg.PendingPath != "",
		}}
	case errors.Is(d.err, context.DeadlineExceeded):
		terr := &TimeoutError{Phase: "running", Deadline: j.deadline}
		s.timeouts.Add(1)
		br.Done(false)
		s.logLine(j.req, j.id, "timeout", br, d.wait, d.run, d.attempts, terr)
		return jobOutcome{status: http.StatusGatewayTimeout,
			errB: errorBody{Outcome: "timeout", Error: terr.Error(), Timeout: true}}
	case errors.Is(d.err, context.Canceled):
		br.Forget()
		s.logLine(j.req, j.id, "canceled", br, d.wait, d.run, d.attempts, d.err)
		return jobOutcome{status: http.StatusServiceUnavailable,
			errB: errorBody{Outcome: "canceled", Error: d.err.Error()}}
	default:
		s.errsN.Add(1)
		br.Done(false)
		s.logLineX(j.req, j.id, "error", br, d.wait, d.run, d.attempts, d.err, d.prog)
		return jobOutcome{status: http.StatusInternalServerError,
			errB: errorBody{Outcome: "error", Error: d.err.Error()}}
	}
}

// runOne executes one dequeued job on the calling worker goroutine.
func (s *Server) runOne(j *job) {
	defer s.accepted.Done()
	wait := s.cfg.Now().Sub(j.enq)
	if err := j.ctx.Err(); err != nil {
		// Deadline spent in the queue; never start doomed work.
		j.done <- jobDone{err: err, wait: wait}
		return
	}
	j.started.Store(true)
	s.activeMu.Lock()
	s.active[j.id] = j
	s.activeMu.Unlock()
	cur := s.inflight.Add(1)
	for {
		hw := s.highWater.Load()
		if cur <= hw || s.highWater.CompareAndSwap(hw, cur) {
			break
		}
	}
	start := s.cfg.Now()
	var saves0, fails0, recov0, steps0 uint64
	if s.cfg.Progress != nil {
		saves0, fails0, recov0, steps0, _ = s.cfg.Progress.Snapshot()
	}
	res, err, attempts := s.executeJob(j.ctx, j.req)
	// The counters are shared across workers, so under concurrency the
	// delta attributes overlapping jobs' progress to each of them — an
	// observability aid, not an exact per-job ledger.
	prog := ""
	if s.cfg.Progress != nil {
		saves, fails, recov, steps, _ := s.cfg.Progress.Snapshot()
		prog = fmt.Sprintf(" progress_saves=%d progress_save_failures=%d recoveries=%d steps_saved=%d",
			saves-saves0, fails-fails0, recov-recov0, steps-steps0)
	}
	s.inflight.Add(-1)
	s.activeMu.Lock()
	delete(s.active, j.id)
	s.activeMu.Unlock()
	j.done <- jobDone{res: res, err: err, attempts: attempts, wait: wait, run: s.cfg.Now().Sub(start), prog: prog}
}

// executeJob runs the job with budget-limited, jitter-backed retries.
// Each attempt is panic-protected (site "serve.job" is the chaos
// injection point); a panic is a bug, reported once and never retried.
func (s *Server) executeJob(ctx context.Context, req *JobRequest) (res *JobResult, err error, attempts int) {
	maxAttempts := 1
	if req.Retries > 0 {
		extra := req.Retries
		if extra > s.cfg.MaxRetries {
			extra = s.cfg.MaxRetries
		}
		maxAttempts += extra
	}
	jopts := pool.Options{Backoff: s.cfg.RetryBackoff, MaxBackoff: s.cfg.RetryMaxBackoff}
	jitter := pool.JitterState(jopts)
	for a := 1; ; a++ {
		attempts = a
		res, err = pool.RetryValue(ctx, pool.Options{}, func(ctx context.Context) (*JobResult, error) {
			if ferr := faults.Check("serve.job"); ferr != nil {
				return nil, ferr
			}
			return s.run(ctx, req)
		})
		if err == nil || a >= maxAttempts || ctx.Err() != nil {
			return res, err, attempts
		}
		var pe *pool.PanicError
		if errors.As(err, &pe) {
			return res, err, attempts
		}
		if !s.budget.Withdraw() {
			return res, err, attempts // budget empty: the first error stands
		}
		t := time.NewTimer(pool.BackoffDelay(jopts, a, &jitter))
		select {
		case <-ctx.Done():
			t.Stop()
			return res, err, attempts
		case <-t.C:
		}
	}
}

// Drain performs graceful shutdown: stop admitting, wait for admitted
// jobs up to DrainDeadline, then cancel and checkpoint whatever is left
// (queued jobs verbatim, running jobs after cancellation) to
// PendingPath as resubmittable JSONL, and stop the workers. Completed
// evaluations were already persisted by the evaluator's own resume
// journal as they finished; the pending checkpoint covers only the work
// this process is giving up on.
func (s *Server) Drain() DrainStats {
	s.draining.Store(true)
	st := DrainStats{PendingCheckpoint: s.cfg.PendingPath}

	allDone := make(chan struct{})
	go func() {
		s.accepted.Wait()
		close(allDone)
	}()
	timer := time.NewTimer(s.cfg.DrainDeadline)
	defer timer.Stop()
	select {
	case <-allDone:
		st.Clean = true
	case <-timer.C:
	}

	var pending []PendingJob
	if !st.Clean {
		// Flush jobs still queued: they never started, so their specs
		// checkpoint verbatim.
		pending = append(pending, s.flushQueued()...)
		// Cancel jobs still running and checkpoint their specs too; give
		// them a short grace to observe cancellation at a region boundary.
		for _, j := range s.cancelActive() {
			pending = append(pending, PendingJob{State: "running", Job: j.req})
		}
		grace := time.NewTimer(s.cfg.DrainDeadline / 4)
		select {
		case <-allDone:
		case <-grace.C:
		}
		grace.Stop()
		// A racing admitter may have slipped one more job into the queue
		// between flush and cancel; sweep again so nothing is stranded.
		pending = append(pending, s.flushQueued()...)
		for _, p := range pending {
			if p.State == "queued" {
				st.JournaledQueued++
			} else {
				st.JournaledRunning++
			}
		}
	}
	if len(pending) > 0 && s.cfg.PendingPath != "" {
		if err := writePendingCheckpoint(s.cfg.PendingPath, pending); err != nil {
			s.logf("drain: pending checkpoint %s failed: %v", s.cfg.PendingPath, err)
		} else {
			s.journaled.Add(uint64(len(pending)))
		}
	}

	s.baseStop()
	workersDone := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(workersDone)
	}()
	stuck := time.NewTimer(s.cfg.DrainDeadline / 4)
	defer stuck.Stop()
	select {
	case <-workersDone:
	case <-stuck.C:
		// CPU-bound work that has not reached a cancellation point yet;
		// the process is exiting anyway, so report rather than hang.
		st.LeakedWorkers = int(s.inflight.Load())
	}
	s.logf("drain: clean=%v journaled_queued=%d journaled_running=%d leaked=%d",
		st.Clean, st.JournaledQueued, st.JournaledRunning, st.LeakedWorkers)
	return st
}

// flushQueued empties the queue, finishing each job as drained.
func (s *Server) flushQueued() []PendingJob {
	var flushed []PendingJob
	for {
		select {
		case j := <-s.jobs:
			j.cancel()
			flushed = append(flushed, PendingJob{State: "queued", Job: j.req})
			j.done <- jobDone{err: ErrDraining, wait: s.cfg.Now().Sub(j.enq)}
			s.accepted.Done()
		default:
			return flushed
		}
	}
}

// cancelActive cancels every running job and returns them.
func (s *Server) cancelActive() []*job {
	s.activeMu.Lock()
	defer s.activeMu.Unlock()
	jobs := make([]*job, 0, len(s.active))
	for _, j := range s.active {
		j.cancel()
		jobs = append(jobs, j)
	}
	return jobs
}

// writePendingCheckpoint writes the drain checkpoint crash-safely:
// temp file, fsync BEFORE the atomic rename, so a SIGKILL mid-drain
// leaves either no checkpoint or a complete one — never a torn file.
func writePendingCheckpoint(path string, pending []PendingJob) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, p := range pending {
		if err := enc.Encode(p); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadPendingCheckpoint reads a drain checkpoint back — the resubmission
// half of the drain contract.
func LoadPendingCheckpoint(path string) ([]PendingJob, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []PendingJob
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var p PendingJob
		if err := dec.Decode(&p); err != nil {
			return out, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Resubmit re-enqueues jobs recovered from a drain checkpoint — the
// boot-time half of the crash-recovery contract: lpserved loads the
// previous process's pending file, Resubmits it, and renames the file
// aside. Each job goes through the normal admission dance (drain check,
// breaker, bounded queue); jobs that fail validation or are shed count
// as rejected and are dropped — their shed outcome is already logged.
// Accepted jobs run detached: their results land in the evaluator's
// resume journal and the per-request log, not in an HTTP response.
// Call after Start.
func (s *Server) Resubmit(pending []PendingJob) (accepted, rejected int) {
	for _, p := range pending {
		job := p.Job
		if job == nil || s.validateJob(job) != nil {
			rejected++
			continue
		}
		j, shed := s.admit(context.Background(), job)
		if shed != nil {
			rejected++
			continue
		}
		accepted++
		s.resubmitted.Add(1)
		go s.awaitJob(j)
	}
	s.logf("boot: resubmitted=%d rejected=%d from drain checkpoint", accepted, rejected)
	return accepted, rejected
}

// logLine emits the structured per-request line: one line per request,
// logfmt-shaped, carrying everything an operator greps for.
func (s *Server) logLine(req *JobRequest, id uint64, outcome string, br *Breaker, wait, run time.Duration, attempts int, err error) {
	s.logLineX(req, id, outcome, br, wait, run, attempts, err, "")
}

// logLineX is logLine with extra pre-rendered logfmt fields appended —
// worker-delivered outcomes carry the job's durable-progress delta.
func (s *Server) logLineX(req *JobRequest, id uint64, outcome string, br *Breaker, wait, run time.Duration, attempts int, err error, extra string) {
	if s.cfg.Log == nil {
		return
	}
	errStr := ""
	if err != nil {
		errStr = fmt.Sprintf(" err=%q", err.Error())
	}
	s.logf("job=%d id=%q class=%s app=%s outcome=%s queue_wait=%s run=%s attempts=%d breaker=%s%s%s",
		id, req.ID, req.Class, req.App, outcome,
		wait.Round(time.Microsecond), run.Round(time.Microsecond), attempts, br.State(), extra, errStr)
}

// logf serializes writer access so concurrent requests do not interleave
// partial lines.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	fmt.Fprintf(s.cfg.Log, "ts=%s ", s.cfg.Now().UTC().Format(time.RFC3339Nano))
	fmt.Fprintf(s.cfg.Log, format+"\n", args...)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds renders a Retry-After header value, rounding up so a
// client honoring it never arrives early.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
