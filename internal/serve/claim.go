package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"looppoint/internal/artifact"
)

// POST /v1/claim is the worker half of the campaign fabric's lease
// protocol (DESIGN.md §14). A claim is a job submission made idempotent
// by a coordinator-chosen claim key — the job's content address: while a
// claim for key K is in flight, a second claim for K attaches to the
// running execution instead of admitting a duplicate. That is exactly
// the shape a work-stealing coordinator needs: when a lease expires and
// the job is re-dispatched, a re-dispatch that lands on the SAME worker
// (network blip, slow response) dedupes at the worker, while a
// re-dispatch to a different worker runs independently and the
// coordinator resolves the duplicate (first-complete wins).
//
// The response carries the FNV-1a checksum of the result's compact JSON
// so the coordinator can detect a response corrupted in transit (or by
// the chaos plan) and treat it as a retryable failure instead of
// recording garbage.

// ClaimRequest is the JSON body of POST /v1/claim.
type ClaimRequest struct {
	// Key is the coordinator's claim token — the job's content address.
	// Claims with equal keys dedupe onto one execution while in flight.
	Key string `json:"key"`
	// LeaseMS is the coordinator's lease on this dispatch. When the job
	// spec carries no deadline of its own, the lease bounds the worker-
	// side execution too: work the coordinator has given up on is work
	// this worker should stop doing.
	LeaseMS int64 `json:"lease_ms,omitempty"`
	// Job is the job spec, exactly as POST /v1/jobs takes it.
	Job JobRequest `json:"job"`
}

// ClaimResponse is the JSON body of every /v1/claim reply. Status echoes
// the HTTP status (the same per-job statuses /v1/jobs uses), so the
// envelope is self-describing when it travels through the batch-style
// tooling.
type ClaimResponse struct {
	Key     string     `json:"key"`
	Status  int        `json:"status"`
	Outcome string     `json:"outcome"`
	Dedup   bool       `json:"dedup,omitempty"`
	Result  *JobResult `json:"result,omitempty"`
	// FNV1a is the checksum of Result's compact JSON (success only):
	// the coordinator's corruption check.
	FNV1a string     `json:"fnv1a,omitempty"`
	Error *errorBody `json:"error,omitempty"`
}

// claimEntry is one in-flight claim execution; duplicate claims block on
// done and then read outcome (the close is the publication barrier).
type claimEntry struct {
	done    chan struct{}
	outcome jobOutcome
}

// handleClaim admits and runs one idempotent claim. The first claim for
// a key goes through the exact same admission dance as POST /v1/jobs —
// drain check, class breaker, bounded queue — so claims are sheddable
// and breaker-gated like any other job. Duplicate claims while the first
// is in flight attach to its outcome without consuming admission
// capacity. Entries are dropped once the outcome is published: claims
// are an in-flight dedupe, not a cache — the coordinator's content-
// addressed cache owns completed results.
func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var creq ClaimRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&creq); err != nil {
		writeJSON(w, http.StatusBadRequest, ClaimResponse{Status: http.StatusBadRequest,
			Outcome: "bad_request", Error: &errorBody{Outcome: "bad_request", Error: "bad JSON: " + err.Error()}})
		return
	}
	if creq.Key == "" {
		writeJSON(w, http.StatusBadRequest, ClaimResponse{Status: http.StatusBadRequest,
			Outcome: "bad_request", Error: &errorBody{Outcome: "bad_request", Error: "missing claim key"}})
		return
	}
	if bad := s.validateJob(&creq.Job); bad != nil {
		writeClaim(w, creq.Key, *bad, false)
		return
	}
	if creq.Job.ID == "" {
		creq.Job.ID = creq.Key
	}
	if creq.Job.DeadlineMS == 0 && creq.LeaseMS > 0 {
		creq.Job.DeadlineMS = creq.LeaseMS
	}
	s.claims.Add(1)

	s.claimMu.Lock()
	if e, ok := s.claimFlight[creq.Key]; ok {
		s.claimMu.Unlock()
		s.claimDedups.Add(1)
		select {
		case <-e.done:
			writeClaim(w, creq.Key, e.outcome, true)
		case <-r.Context().Done():
			// This duplicate's client gave up; the primary execution is
			// unaffected.
			writeClaim(w, creq.Key, jobOutcome{status: http.StatusServiceUnavailable,
				errB: errorBody{Outcome: "canceled", Error: r.Context().Err().Error()}}, true)
		}
		return
	}
	e := &claimEntry{done: make(chan struct{})}
	s.claimFlight[creq.Key] = e
	s.claimMu.Unlock()

	var o jobOutcome
	if j, shed := s.admit(r.Context(), &creq.Job); shed != nil {
		o = *shed
	} else {
		o = s.awaitJob(j)
	}
	e.outcome = o
	s.claimMu.Lock()
	delete(s.claimFlight, creq.Key)
	s.claimMu.Unlock()
	close(e.done)
	writeClaim(w, creq.Key, o, false)
}

// writeClaim renders one claim outcome as the full HTTP response,
// stamping the result checksum on success.
func writeClaim(w http.ResponseWriter, key string, o jobOutcome, dedup bool) {
	cr := ClaimResponse{Key: key, Status: o.status, Dedup: dedup}
	if o.res != nil {
		cr.Outcome = "ok"
		cr.Result = o.res
		if b, err := json.Marshal(o.res); err == nil {
			cr.FNV1a = fmt.Sprintf("%#x", artifact.Checksum(b))
		}
	} else {
		eb := o.errB
		cr.Outcome = eb.Outcome
		cr.Error = &eb
	}
	if o.errB.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(time.Duration(o.errB.RetryAfterMS)*time.Millisecond))
	}
	writeJSON(w, o.status, cr)
}
