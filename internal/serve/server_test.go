package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"looppoint/internal/faults"
)

// postJob drives the handler directly (no sockets): returns the HTTP
// status and the decoded JSON body.
func postJob(t *testing.T, s *Server, req JobRequest) (int, map[string]any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body)))
	var out map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad response body %q: %v", w.Body.String(), err)
	}
	return w.Code, out
}

// okRunner completes instantly.
func okRunner(ctx context.Context, req *JobRequest) (*JobResult, error) {
	return &JobResult{ID: req.ID, Class: req.Class, App: req.App, Summary: "ok"}, nil
}

// blockingRunner blocks until released (or the job's deadline/cancel).
type blockingRunner struct {
	started chan string   // receives req.ID when a job begins running
	release chan struct{} // close (or send) to let jobs finish
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{started: make(chan string, 64), release: make(chan struct{})}
}

func (b *blockingRunner) run(ctx context.Context, req *JobRequest) (*JobResult, error) {
	b.started <- req.ID
	select {
	case <-b.release:
		return &JobResult{ID: req.ID, Class: req.Class, App: req.App, Summary: "ok"}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func startServer(t *testing.T, cfg Config, run RunFunc) *Server {
	t.Helper()
	s := New(cfg, run)
	s.Start()
	t.Cleanup(func() { s.Drain() })
	return s
}

// TestServeJobOK: the happy path end to end — admission, execution,
// server-filled timing fields, and the health endpoints.
func TestServeJobOK(t *testing.T) {
	s := startServer(t, Config{MaxInflight: 2}, okRunner)
	code, body := postJob(t, s, JobRequest{Class: ClassAnalyze, App: "npb-cg"})
	if code != http.StatusOK {
		t.Fatalf("status %d body %v, want 200", code, body)
	}
	if body["summary"] != "ok" || body["attempts"].(float64) != 1 {
		t.Fatalf("bad result: %v", body)
	}
	if body["id"] == "" {
		t.Fatal("server did not mint a job id")
	}

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("readyz %d, want 200", w.Code)
	}
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz %d, want 200", w.Code)
	}
	st := s.Stats()
	if st.Admitted != 1 || st.Completed != 1 {
		t.Fatalf("stats admitted=%d completed=%d, want 1/1", st.Admitted, st.Completed)
	}
}

// TestServeRejectsBadRequests: malformed JSON, unknown class, missing
// app — all 400, none admitted.
func TestServeRejectsBadRequests(t *testing.T) {
	s := startServer(t, Config{MaxInflight: 1}, okRunner)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader([]byte("{nope"))))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d, want 400", w.Code)
	}
	if code, _ := postJob(t, s, JobRequest{Class: "mine-bitcoin", App: "x"}); code != http.StatusBadRequest {
		t.Fatalf("unknown class: status %d, want 400", code)
	}
	if code, _ := postJob(t, s, JobRequest{Class: ClassAnalyze}); code != http.StatusBadRequest {
		t.Fatalf("missing app: status %d, want 400", code)
	}
	if st := s.Stats(); st.Admitted != 0 {
		t.Fatalf("bad requests were admitted: %+v", st)
	}
}

// TestServeQueueFullSheds429: with one worker busy and the queue full,
// the next request is shed immediately with 429 + Retry-After instead of
// queuing unboundedly — and completes normally once load clears.
func TestServeQueueFullSheds429(t *testing.T) {
	br := newBlockingRunner()
	s := startServer(t, Config{MaxInflight: 1, QueueDepth: 1}, br.run)

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			code, _ := postJob(t, s, JobRequest{ID: fmt.Sprintf("j%d", i), Class: ClassAnalyze, App: "npb-cg"})
			results <- code
		}(i)
	}
	<-br.started // one job running; wait for the other to be queued
	waitFor(t, func() bool { return s.Stats().Queued == 1 })

	code, body := postJob(t, s, JobRequest{ID: "overload", Class: ClassAnalyze, App: "npb-cg"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d body %v, want 429", code, body)
	}
	if body["outcome"] != "shed_queue" || body["retry_after_ms"].(float64) <= 0 {
		t.Fatalf("bad shed body: %v", body)
	}

	close(br.release)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("admitted job finished with %d, want 200", code)
		}
	}
	if st := s.Stats(); st.ShedQueue != 1 || st.Completed != 2 {
		t.Fatalf("stats %+v, want shed_queue=1 completed=2", st)
	}
}

// TestServeDeadlineWhileQueued: a job whose deadline expires before a
// worker picks it up answers promptly with the typed queued-phase
// timeout — it is not silently dropped and does not start doomed work.
func TestServeDeadlineWhileQueued(t *testing.T) {
	br := newBlockingRunner()
	s := startServer(t, Config{MaxInflight: 1, QueueDepth: 2}, br.run)

	first := make(chan int, 1)
	go func() {
		code, _ := postJob(t, s, JobRequest{ID: "holder", Class: ClassAnalyze, App: "npb-cg"})
		first <- code
	}()
	<-br.started

	start := time.Now()
	code, body := postJob(t, s, JobRequest{ID: "doomed", Class: ClassAnalyze, App: "npb-cg", DeadlineMS: 80})
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d body %v, want 504", code, body)
	}
	if body["outcome"] != "timeout" || body["timeout"] != true {
		t.Fatalf("bad timeout body: %v", body)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timed-out request took %v to answer", elapsed)
	}

	close(br.release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("holder finished with %d, want 200", code)
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Fatalf("stats %+v, want timeouts=1", st)
	}
}

// TestServeBreakerTripsAndRecovers: consecutive failures in one class
// trip its breaker (503 + Retry-After while open), other classes keep
// serving, and after the hold a successful probe closes it again.
func TestServeBreakerTripsAndRecovers(t *testing.T) {
	clk := newFakeClock()
	var failing atomic.Bool
	failing.Store(true)
	run := func(ctx context.Context, req *JobRequest) (*JobResult, error) {
		if req.Class == ClassSimulate && failing.Load() {
			return nil, fmt.Errorf("synthetic dependency failure")
		}
		return okRunner(ctx, req)
	}
	s := startServer(t, Config{
		MaxInflight: 2,
		Breaker:     BreakerOpts{FailureThreshold: 2, OpenFor: 10 * time.Second, Now: clk.Now},
	}, run)

	for i := 0; i < 2; i++ {
		if code, _ := postJob(t, s, JobRequest{Class: ClassSimulate, App: "npb-cg"}); code != http.StatusInternalServerError {
			t.Fatalf("failing job %d: status %d, want 500", i, code)
		}
	}
	code, body := postJob(t, s, JobRequest{Class: ClassSimulate, App: "npb-cg"})
	if code != http.StatusServiceUnavailable || body["outcome"] != "shed_breaker" {
		t.Fatalf("status %d body %v, want 503 shed_breaker", code, body)
	}
	if body["retry_after_ms"].(float64) <= 0 {
		t.Fatalf("shed_breaker without a retry hint: %v", body)
	}
	// The analyze class has its own breaker and keeps serving.
	if code, _ := postJob(t, s, JobRequest{Class: ClassAnalyze, App: "npb-cg"}); code != http.StatusOK {
		t.Fatalf("analyze sheared by simulate's breaker: %d", code)
	}

	clk.Advance(10 * time.Second)
	failing.Store(false)
	if code, body := postJob(t, s, JobRequest{Class: ClassSimulate, App: "npb-cg"}); code != http.StatusOK {
		t.Fatalf("probe after recovery: status %d body %v, want 200", code, body)
	}
	if got := s.Breaker(ClassSimulate).State(); got != BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", got)
	}
	if got := s.Breaker(ClassSimulate).Trips(); got != 1 {
		t.Fatalf("trips %d, want 1", got)
	}
}

// TestServeRetryBudgetBoundsAmplification: client-requested retries are
// funded by the shared budget; once it is empty, jobs fail with their
// first attempt's error instead of retrying — overload cannot be
// amplified by eager clients.
func TestServeRetryBudgetBoundsAmplification(t *testing.T) {
	var mu sync.Mutex
	tries := map[string]int{}
	run := func(ctx context.Context, req *JobRequest) (*JobResult, error) {
		mu.Lock()
		tries[req.ID]++
		n := tries[req.ID]
		mu.Unlock()
		if n == 1 {
			return nil, fmt.Errorf("first attempt always fails")
		}
		return okRunner(ctx, req)
	}
	s := startServer(t, Config{
		MaxInflight: 1,
		RetryBudget: 1, RetryRatio: 1e-9, // one banked retry, no meaningful refill
		RetryBackoff: time.Millisecond, RetryMaxBackoff: 2 * time.Millisecond,
		Breaker: BreakerOpts{FailureThreshold: 100},
	}, run)

	code, body := postJob(t, s, JobRequest{ID: "funded", Class: ClassReport, App: "a", Retries: 2})
	if code != http.StatusOK || body["attempts"].(float64) != 2 {
		t.Fatalf("funded retry: status %d body %v, want 200 after 2 attempts", code, body)
	}
	code, body = postJob(t, s, JobRequest{ID: "starved", Class: ClassReport, App: "a", Retries: 2})
	if code != http.StatusInternalServerError {
		t.Fatalf("starved retry: status %d body %v, want 500 (budget empty)", code, body)
	}
	mu.Lock()
	starvedTries := tries["starved"]
	mu.Unlock()
	if starvedTries != 1 {
		t.Fatalf("starved job ran %d attempts, want 1 (budget must deny the retry)", starvedTries)
	}
	if st := s.Stats(); st.RetriesDenied < 1 {
		t.Fatalf("stats %+v, want retries_denied >= 1", st)
	}
}

// TestServeDrainJournalsUnfinished: SIGTERM-style drain stops admitting
// (readyz flips, new jobs shed), flushes queued jobs and cancels running
// ones, and checkpoints both to the pending file for resubmission.
func TestServeDrainJournalsUnfinished(t *testing.T) {
	pending := filepath.Join(t.TempDir(), "pending.jsonl")
	br := newBlockingRunner()
	s := New(Config{
		MaxInflight: 1, QueueDepth: 4,
		DrainDeadline: 300 * time.Millisecond,
		PendingPath:   pending,
	}, br.run)
	s.Start()

	results := make(chan map[string]any, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			_, body := postJob(t, s, JobRequest{ID: fmt.Sprintf("j%d", i), Class: ClassAnalyze, App: "npb-cg"})
			results <- body
		}(i)
	}
	<-br.started // one running...
	waitFor(t, func() bool { return s.Stats().Queued == 2 })

	st := s.Drain()
	if st.Clean {
		t.Fatal("drain reported clean with jobs stuck")
	}
	if st.JournaledQueued != 2 || st.JournaledRunning != 1 {
		t.Fatalf("journaled queued=%d running=%d, want 2/1", st.JournaledQueued, st.JournaledRunning)
	}

	outcomes := map[string]int{}
	for i := 0; i < 3; i++ {
		body := <-results
		outcomes[body["outcome"].(string)]++
	}
	if outcomes["drained"] != 2 || outcomes["canceled"] != 1 {
		t.Fatalf("outcomes %v, want 2 drained + 1 canceled", outcomes)
	}

	// The checkpoint is loadable and resubmittable.
	jobs, err := LoadPendingCheckpoint(pending)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("checkpoint holds %d jobs, want 3", len(jobs))
	}
	states := map[string]int{}
	for _, p := range jobs {
		states[p.State]++
		if p.Job == nil || p.Job.App != "npb-cg" {
			t.Fatalf("checkpoint entry lost its spec: %+v", p)
		}
	}
	if states["queued"] != 2 || states["running"] != 1 {
		t.Fatalf("checkpoint states %v, want 2 queued + 1 running", states)
	}

	// Draining servers refuse new work and report unready.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", w.Code)
	}
	if code, body := postJob(t, s, JobRequest{Class: ClassAnalyze, App: "npb-cg"}); code != http.StatusServiceUnavailable || body["outcome"] != "shed_drain" {
		t.Fatalf("admission while draining: %d %v, want 503 shed_drain", code, body)
	}
}

// TestServeDrainCleanWhenIdle: draining an idle (or promptly finishing)
// server is clean — no checkpoint, workers exit.
func TestServeDrainCleanWhenIdle(t *testing.T) {
	pending := filepath.Join(t.TempDir(), "pending.jsonl")
	s := New(Config{MaxInflight: 2, PendingPath: pending, DrainDeadline: time.Second}, okRunner)
	s.Start()
	if code, _ := postJob(t, s, JobRequest{Class: ClassAnalyze, App: "npb-cg"}); code != http.StatusOK {
		t.Fatal("warmup job failed")
	}
	st := s.Drain()
	if !st.Clean || st.JournaledQueued != 0 || st.JournaledRunning != 0 || st.LeakedWorkers != 0 {
		t.Fatalf("idle drain not clean: %+v", st)
	}
	if _, err := LoadPendingCheckpoint(pending); err == nil {
		t.Fatal("clean drain wrote a pending checkpoint")
	}
}

// TestServeChaosFaultNoHangs is the deterministic chaos drill: with the
// "serve.job" site armed (transient errors, slowdowns, and worker
// panics, seed-swept in CI via FAULTS_SEED), a burst of concurrent
// requests with tight deadlines must all be answered — success, typed
// error, typed timeout, or shed — with no request hanging past its
// deadline, inflight never exceeding MaxInflight, and a clean drain
// afterwards.
func TestServeChaosFaultNoHangs(t *testing.T) {
	seed := faults.SeedFromEnv(1)
	defer faults.Enable(faults.NewPlan(seed,
		faults.Rule{Site: "serve.job", Kind: faults.Transient, Rate: 3},
		faults.Rule{Site: "serve.job", Kind: faults.Slow, Rate: 5, Delay: 10 * time.Millisecond},
		faults.Rule{Site: "serve.job", Kind: faults.Panic, Rate: 11, Count: 3},
	))()

	const (
		maxInflight = 4
		requests    = 40
		deadline    = 2 * time.Second
		slack       = 8 * time.Second // CI scheduling headroom on top of the deadline
	)
	run := func(ctx context.Context, req *JobRequest) (*JobResult, error) {
		// A sliver of deterministic work that respects cancellation.
		d := time.Duration(req.Threads%5+1) * time.Millisecond
		select {
		case <-time.After(d):
			return &JobResult{ID: req.ID, Summary: "ok"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s := New(Config{
		MaxInflight: maxInflight, QueueDepth: 8,
		DefaultDeadline: deadline,
		RetryBackoff:    time.Millisecond, RetryMaxBackoff: 5 * time.Millisecond,
		Breaker:       BreakerOpts{FailureThreshold: 4, OpenFor: 50 * time.Millisecond},
		DrainDeadline: 2 * time.Second,
	}, run)
	s.Start()

	classes := []string{ClassAnalyze, ClassSimulate, ClassReport}
	type answer struct {
		code    int
		outcome string
		elapsed time.Duration
	}
	answers := make(chan answer, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			code, body := postJob(t, s, JobRequest{
				ID: fmt.Sprintf("chaos-%d", i), Class: classes[i%len(classes)],
				App: "npb-cg", Threads: i, Retries: 1,
				DeadlineMS: deadline.Milliseconds(),
			})
			outcome, _ := body["outcome"].(string)
			if code == http.StatusOK {
				outcome = "ok"
			}
			answers <- answer{code: code, outcome: outcome, elapsed: time.Since(start)}
		}(i)
	}
	wg.Wait()
	close(answers)

	outcomes := map[string]int{}
	answered := 0
	for a := range answers {
		answered++
		outcomes[a.outcome]++
		if a.elapsed > deadline+slack {
			t.Errorf("request answered after %v — past deadline %v + slack", a.elapsed, deadline)
		}
		switch a.code {
		case http.StatusOK, http.StatusInternalServerError, http.StatusGatewayTimeout,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Errorf("unexpected status %d (outcome %s)", a.code, a.outcome)
		}
	}
	if answered != requests {
		t.Fatalf("answered %d of %d requests", answered, requests)
	}
	st := s.Stats()
	if st.HighWater > maxInflight {
		t.Fatalf("inflight high water %d exceeded max-inflight %d", st.HighWater, maxInflight)
	}
	total := st.Completed + st.Errors + st.Timeouts + st.ShedQueue + st.ShedBreaker + st.ShedDrain
	if st.Admitted > total {
		t.Fatalf("admitted %d > accounted %d: some request vanished (stats %+v)", st.Admitted, total, st)
	}
	t.Logf("seed %d outcomes: %v (high water %d, trips %v)", seed, outcomes, st.HighWater, st.Trips)

	ds := s.Drain()
	if !ds.Clean {
		t.Fatalf("post-chaos drain not clean: %+v", ds)
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
