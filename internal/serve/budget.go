package serve

import "sync"

// Budget defaults: up to eight banked retry tokens, each admitted job
// depositing a tenth of one — so sustained retries are bounded at ~10%
// of admitted traffic, the classic retry-budget shape.
const (
	DefaultRetryBudget = 8.0
	DefaultRetryRatio  = 0.1
)

// Budget is the server-wide retry budget: a token bucket where every
// admitted job deposits Ratio tokens (capped at Max) and every retry
// attempt withdraws one whole token. When the bucket is empty, retries
// are denied and jobs fail with their first attempt's error — client-
// requested retries can therefore never amplify an overload: the retry
// volume the server adds on top of admitted traffic is bounded by
// Ratio, no matter what clients ask for. Purely counter-driven (no
// clock), so tests are deterministic.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
	denied uint64
}

// NewBudget builds a budget that starts full. max <= 0 disables retries
// entirely (every Withdraw is denied); ratio <= 0 uses DefaultRetryRatio.
func NewBudget(max, ratio float64) *Budget {
	if ratio <= 0 {
		ratio = DefaultRetryRatio
	}
	if max < 0 {
		max = 0
	}
	return &Budget{tokens: max, max: max, ratio: ratio}
}

// Deposit credits one admitted job's share of retry headroom.
func (b *Budget) Deposit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
}

// Withdraw spends one token for one retry attempt; false means the
// budget is exhausted and the retry must not run.
func (b *Budget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current balance — observability for /healthz.
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Denied returns how many retries the budget has refused.
func (b *Budget) Denied() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}
