package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"looppoint/internal/artifact"
)

// postClaim drives /v1/claim directly and decodes the envelope.
func postClaim(t *testing.T, s *Server, req ClaimRequest) (int, ClaimResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/claim", bytes.NewReader(body)))
	var out ClaimResponse
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad claim body %q: %v", w.Body.String(), err)
	}
	return w.Code, out
}

// TestClaimOK: a claim runs like a job, echoes its key, and stamps a
// checksum that verifies against the result's compact JSON.
func TestClaimOK(t *testing.T) {
	s := startServer(t, Config{MaxInflight: 2}, okRunner)
	code, cr := postClaim(t, s, ClaimRequest{Key: "cafe01",
		Job: JobRequest{Class: ClassAnalyze, App: "npb-cg"}})
	if code != http.StatusOK || cr.Status != http.StatusOK || cr.Outcome != "ok" {
		t.Fatalf("claim: code=%d %+v", code, cr)
	}
	if cr.Key != "cafe01" || cr.Dedup {
		t.Fatalf("claim envelope: %+v", cr)
	}
	if cr.Result == nil || cr.Result.ID != "cafe01" {
		t.Fatalf("claim result should inherit the key as job id: %+v", cr.Result)
	}
	b, err := json.Marshal(cr.Result)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("%#x", artifact.Checksum(b)); cr.FNV1a != want {
		t.Fatalf("claim checksum %s does not verify (want %s)", cr.FNV1a, want)
	}
	if st := s.Stats(); st.Claims != 1 || st.ClaimDedups != 0 || st.Completed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestClaimValidation: missing key, bad class — rejected with 400 and
// nothing admitted.
func TestClaimValidation(t *testing.T) {
	s := startServer(t, Config{MaxInflight: 1}, okRunner)
	if code, cr := postClaim(t, s, ClaimRequest{Job: JobRequest{Class: ClassAnalyze, App: "x"}}); code != http.StatusBadRequest || cr.Outcome != "bad_request" {
		t.Fatalf("missing key: %d %+v", code, cr)
	}
	if code, cr := postClaim(t, s, ClaimRequest{Key: "k", Job: JobRequest{Class: "nope", App: "x"}}); code != http.StatusBadRequest || cr.Outcome != "bad_request" {
		t.Fatalf("bad class: %d %+v", code, cr)
	}
	if st := s.Stats(); st.Admitted != 0 {
		t.Fatalf("bad claims were admitted: %+v", st)
	}
}

// TestClaimDedupesInFlight: N concurrent claims with the same key run
// the job once; every duplicate attaches to the same outcome and says
// so. Distinct keys still run independently.
func TestClaimDedupesInFlight(t *testing.T) {
	br := newBlockingRunner()
	s := startServer(t, Config{MaxInflight: 2}, br.run)

	const dups = 4
	var wg sync.WaitGroup
	results := make([]ClaimResponse, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = postClaim(t, s, ClaimRequest{Key: "shared",
				Job: JobRequest{Class: ClassAnalyze, App: "npb-cg"}})
		}(i)
	}
	<-br.started // exactly one execution began
	waitFor(t, func() bool { return s.Stats().ClaimDedups == dups-1 })
	close(br.release)
	wg.Wait()

	dedups := 0
	for _, cr := range results {
		if cr.Status != http.StatusOK || cr.Result == nil {
			t.Fatalf("claim did not share the one execution: %+v", cr)
		}
		if cr.Dedup {
			dedups++
		}
	}
	if dedups != dups-1 {
		t.Fatalf("%d claims report dedup, want %d", dedups, dups-1)
	}
	if st := s.Stats(); st.Admitted != 1 || st.Completed != 1 || st.Claims != dups {
		t.Fatalf("stats %+v, want one admission for %d claims", st, dups)
	}

	// The entry is gone after completion: a later claim re-runs the job —
	// claims dedupe in-flight work, they do not cache results. (release
	// is closed, so the rerun finishes immediately.)
	if _, cr := postClaim(t, s, ClaimRequest{Key: "shared",
		Job: JobRequest{Class: ClassAnalyze, App: "npb-cg"}}); cr.Dedup {
		t.Fatalf("completed claim should not dedupe a fresh one: %+v", cr)
	}
	if st := s.Stats(); st.Admitted != 2 {
		t.Fatalf("fresh claim not re-admitted: %+v", st)
	}
}

// TestClaimShedsLikeJobs: drain and breaker gates apply to claims with
// the same typed outcomes as /v1/jobs.
func TestClaimShedsLikeJobs(t *testing.T) {
	clk := newFakeClock()
	s := startServer(t, Config{MaxInflight: 1,
		Breaker: BreakerOpts{FailureThreshold: 1, Now: clk.Now}},
		func(ctx context.Context, req *JobRequest) (*JobResult, error) {
			return nil, fmt.Errorf("boom")
		})
	if code, cr := postClaim(t, s, ClaimRequest{Key: "k1",
		Job: JobRequest{Class: ClassAnalyze, App: "a"}}); code != http.StatusInternalServerError || cr.Outcome != "error" {
		t.Fatalf("first claim: %d %+v", code, cr)
	}
	// One failure tripped the analyze breaker: the next claim sheds.
	code, cr := postClaim(t, s, ClaimRequest{Key: "k2",
		Job: JobRequest{Class: ClassAnalyze, App: "a"}})
	if code != http.StatusServiceUnavailable || cr.Outcome != "shed_breaker" || cr.Error == nil {
		t.Fatalf("breaker-gated claim: %d %+v", code, cr)
	}
}

// TestClaimLeaseBoundsDeadline: a claim whose job has no deadline of its
// own inherits the lease as its deadline — work the coordinator has
// given up on is work the worker stops doing.
func TestClaimLeaseBoundsDeadline(t *testing.T) {
	br := newBlockingRunner()
	s := startServer(t, Config{MaxInflight: 1}, br.run)
	done := make(chan ClaimResponse, 1)
	go func() {
		_, cr := postClaim(t, s, ClaimRequest{Key: "leased", LeaseMS: 30,
			Job: JobRequest{Class: ClassAnalyze, App: "npb-cg"}})
		done <- cr
	}()
	<-br.started
	cr := <-done // the 30ms lease expires; the runner never releases
	if cr.Status != http.StatusGatewayTimeout || cr.Outcome != "timeout" {
		t.Fatalf("leased claim should time out at the lease: %+v", cr)
	}
	close(br.release)
}
