package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"looppoint/internal/core"
)

// syncBuffer is a mutex-guarded log sink: the server serializes writes
// under its own lock, but detached jobs may still be logging when a test
// reads the buffer.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestStatsEndpointServesProgressCounters: GET /v1/stats returns the
// bare Stats snapshot with the durable-progress counter fields present
// (zero without any progress activity), and rejects non-GET methods.
func TestStatsEndpointServesProgressCounters(t *testing.T) {
	ps := &core.ProgressStats{}
	s := startServer(t, Config{MaxInflight: 1, Progress: ps}, okRunner)
	if code, _ := postJob(t, s, JobRequest{Class: ClassAnalyze, App: "npb-cg"}); code != http.StatusOK {
		t.Fatalf("job status %d, want 200", code)
	}

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/stats status %d, want 200", w.Code)
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad /v1/stats body %q: %v", w.Body.String(), err)
	}
	if st.Completed != 1 || st.Admitted != 1 {
		t.Fatalf("stats completed=%d admitted=%d, want 1/1", st.Completed, st.Admitted)
	}
	// The progress counters must be wired through (all zero here: the
	// stub runner never touches the durable-progress machinery).
	for field, v := range map[string]uint64{
		"progress_saves": st.ProgressSaves, "recoveries": st.Recoveries,
		"recovery_steps_saved": st.RecoveryStepsSaved, "ladder_falls": st.LadderFalls,
	} {
		if v != 0 {
			t.Fatalf("%s = %d before any durable work, want 0", field, v)
		}
	}
	if !strings.Contains(w.Body.String(), `"recovery_steps_saved"`) {
		t.Fatalf("/v1/stats body missing recovery_steps_saved: %s", w.Body.String())
	}

	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/stats", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats status %d, want 405", w.Code)
	}
}

// TestProgressDeltaOnJobLogLine: with Config.Progress set, every
// worker-delivered outcome's log line carries the per-job
// durable-progress delta fields.
func TestProgressDeltaOnJobLogLine(t *testing.T) {
	var log syncBuffer
	ps := &core.ProgressStats{}
	s := startServer(t, Config{MaxInflight: 1, Progress: ps, Log: &log}, okRunner)
	if code, _ := postJob(t, s, JobRequest{Class: ClassAnalyze, App: "npb-cg"}); code != http.StatusOK {
		t.Fatal("job failed")
	}
	out := log.String()
	if !strings.Contains(out, "outcome=ok") || !strings.Contains(out, "progress_saves=0") ||
		!strings.Contains(out, "recoveries=0") || !strings.Contains(out, "steps_saved=0") {
		t.Fatalf("job log line missing progress delta fields:\n%s", out)
	}
}

// TestResubmitPendingJobs: a drain checkpoint written by one server is
// loaded and resubmitted into a fresh one — valid jobs run to
// completion and count as resubmitted, garbage entries are rejected,
// and nothing is double-run.
func TestResubmitPendingJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pending.jsonl")
	pending := []PendingJob{
		{State: "queued", Job: &JobRequest{ID: "p-1", Class: ClassAnalyze, App: "npb-cg"}},
		{State: "running", Job: &JobRequest{ID: "p-2", Class: ClassSimulate, App: "npb-ft"}},
		{State: "queued", Job: &JobRequest{ID: "p-bad", Class: "no-such-class", App: "x"}},
		{State: "queued", Job: nil},
	}
	if err := writePendingCheckpoint(path, pending); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadPendingCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(pending) {
		t.Fatalf("loaded %d pending jobs, want %d", len(loaded), len(pending))
	}

	var ran atomic.Int64
	s := startServer(t, Config{MaxInflight: 2}, func(ctx context.Context, req *JobRequest) (*JobResult, error) {
		ran.Add(1)
		return &JobResult{ID: req.ID, Class: req.Class, App: req.App, Summary: "ok"}, nil
	})
	accepted, rejected := s.Resubmit(loaded)
	if accepted != 2 || rejected != 2 {
		t.Fatalf("Resubmit accepted=%d rejected=%d, want 2/2", accepted, rejected)
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Completed < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("resubmitted jobs did not complete: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	st := s.Stats()
	if st.Resubmitted != 2 || st.Admitted != 2 || ran.Load() != 2 {
		t.Fatalf("resubmitted=%d admitted=%d ran=%d, want 2/2/2", st.Resubmitted, st.Admitted, ran.Load())
	}
}

// TestResubmitDuringDrainRejectsAll: a draining server sheds every
// resubmitted job instead of enqueueing work it will never run.
func TestResubmitDuringDrainRejectsAll(t *testing.T) {
	s := New(Config{MaxInflight: 1, DrainDeadline: 50 * time.Millisecond}, okRunner)
	s.Start()
	s.Drain()
	accepted, rejected := s.Resubmit([]PendingJob{
		{State: "queued", Job: &JobRequest{Class: ClassAnalyze, App: "npb-cg"}},
	})
	if accepted != 0 || rejected != 1 {
		t.Fatalf("draining Resubmit accepted=%d rejected=%d, want 0/1", accepted, rejected)
	}
}
