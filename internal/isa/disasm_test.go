package isa

import (
	"strings"
	"testing"
)

func TestDisassembleCoversEveryOpcode(t *testing.T) {
	p := NewProgram("dis", 1)
	arr := p.Alloc("arr", 16)
	img := p.AddImage("main", false)
	lib := p.AddImage("libsync", true)
	callee := lib.NewRoutine("leaf")
	callee.NewBlock("entry").Nop().Ret()

	r := img.NewRoutine("main")
	b0 := r.NewBlock("entry")
	b1 := r.NewBlock("next")
	b2 := r.NewBlock("done")
	b0.IMovI(1, int64(arr))
	b0.IMov(2, 1)
	b0.IOpI(OpIAdd, 3, 1, 5)
	b0.IOp(OpIXor, 3, 3, 2)
	b0.FMovI(0, 2.5)
	b0.FOp(OpFAdd, 1, 0, 0)
	b0.FMA(1, 0, 0)
	b0.FCmp(CondLT, 4, 0, 1)
	b0.ICvtF(2, 3)
	b0.FCvtI(5, 2)
	b0.ILoad(6, 1, 0)
	b0.IStore(1, 1, 6)
	b0.FLoad(3, 1, 2)
	b0.FStore(1, 3, 3)
	b0.AtomicAdd(7, 1, 0, 6)
	b0.CmpXchg(8, 1, 0, 6)
	b0.Xchg(9, 1, 0, 6)
	b0.FutexWait(1, 0, 6)
	b0.FutexWake(10, 1, 0, 6)
	b0.Pause()
	b0.Syscall(11, SysRand, 0)
	b0.Call(callee)
	b0.BrCondI(CondEQ, 3, 0, b1, b2)
	b1.Nop()
	b1.Br(b2)
	b2.Halt()
	p.SetEntry(0, r)
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := p.Disassemble(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"image main (main)", "image libsync (sync library)",
		"routine main", "routine leaf",
		"imov r1,", "iadd", "fma", "fcmp.lt",
		"ild r6, [r1+0]", "ist [r1+1], r6",
		"xadd", "cmpxchg", "xchg",
		"futexwait", "futexwake", "pause",
		"syscall r11, #1(r0)", "call leaf",
		"brc.eq r3, 0 -> b1 / b2", "br b2", "halt", "ret",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
	// Every instruction line carries an address.
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "0x") && !strings.Contains(trimmed, "  ") {
			t.Errorf("malformed instruction line %q", line)
		}
	}
}
