// Package isa defines the mini instruction set used by the LoopPoint
// reproduction in place of x86-64 binaries.
//
// Programs are built from images (the main binary and synchronization
// libraries such as libomp), which contain routines, which contain basic
// blocks of instructions. Every instruction is assigned a unique address at
// link time so that dynamic analyses (DCFG construction, BBV profiling,
// (PC, count) region markers) and timing simulation can operate on a
// realistic program representation: loops are genuine back edges,
// spin-waits are genuine loops inside a library image, and memory
// operations carry addresses that exercise a cache hierarchy.
package isa

import "fmt"

// Op enumerates the instruction opcodes.
type Op uint8

// Instruction opcodes. Integer ALU ops operate on the integer register
// file, F-prefixed ops on the floating-point file. Memory is a flat,
// word-addressed (8-byte) array shared by all threads.
const (
	OpNop Op = iota
	// Integer ALU: Dst = A op B (or Imm when UseImm).
	OpIAdd
	OpISub
	OpIMul
	OpIDiv
	OpIRem
	OpIAnd
	OpIOr
	OpIXor
	OpIShl
	OpIShr
	OpIMov // Dst = A (or Imm)
	// Float ALU: FDst = FA op FB.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFMov  // FDst = FA (or FImm)
	OpFMA   // FDst = FA*FB + FDst
	OpFSqrt // FDst = sqrt(FA)
	// FCmp writes 1 to integer Dst if FA cond FB else 0.
	OpFCmp
	// ICvtF converts integer A to float Dst; FCvtI the reverse.
	OpICvtF
	OpFCvtI
	// Memory: address (in words) = R[A] + Imm.
	OpILoad  // Dst = mem as int64
	OpIStore // mem = R[B]
	OpFLoad  // FDst = mem as float64
	OpFStore // mem = F[B]
	// Atomics (word-granular, sequentially consistent).
	OpAtomicAdd // Dst = old; mem += R[B]
	OpCmpXchg   // if mem == R[B] { mem = R[Dst]; Dst = 1 } else { Dst = 0 } -- see exec
	OpXchg      // Dst = old; mem = R[B]
	// Control flow.
	OpBr     // unconditional; Target
	OpBrCond // if R[A] cond R[B]/Imm then Target else Else
	OpCall   // call Callee (block 0); returns to next instruction
	OpRet
	OpHalt // thread finished
	// Synchronization / OS.
	OpFutexWait // if mem(R[A]+Imm) == R[B]: block until woken
	OpFutexWake // wake up to R[B] waiters on mem(R[A]+Imm); Dst = #woken
	OpPause     // spin-loop hint
	OpSyscall   // Dst = OS result; Imm = syscall number, R[A] = argument
	opMax
)

var opNames = [...]string{
	OpNop: "nop", OpIAdd: "iadd", OpISub: "isub", OpIMul: "imul",
	OpIDiv: "idiv", OpIRem: "irem", OpIAnd: "iand", OpIOr: "ior",
	OpIXor: "ixor", OpIShl: "ishl", OpIShr: "ishr", OpIMov: "imov",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFMov: "fmov", OpFMA: "fma", OpFSqrt: "fsqrt", OpFCmp: "fcmp",
	OpICvtF: "icvtf", OpFCvtI: "fcvti",
	OpILoad: "ild", OpIStore: "ist", OpFLoad: "fld", OpFStore: "fst",
	OpAtomicAdd: "xadd", OpCmpXchg: "cmpxchg", OpXchg: "xchg",
	OpBr: "br", OpBrCond: "brc", OpCall: "call", OpRet: "ret",
	OpHalt: "halt", OpFutexWait: "futexwait", OpFutexWake: "futexwake",
	OpPause: "pause", OpSyscall: "syscall",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBranch reports whether the opcode is a control transfer that ends a
// basic block.
func (o Op) IsBranch() bool {
	switch o {
	case OpBr, OpBrCond, OpRet, OpHalt:
		return true
	}
	return false
}

// IsMem reports whether the opcode accesses data memory.
func (o Op) IsMem() bool {
	switch o {
	case OpILoad, OpIStore, OpFLoad, OpFStore, OpAtomicAdd, OpCmpXchg, OpXchg, OpFutexWait, OpFutexWake:
		return true
	}
	return false
}

// IsWrite reports whether the opcode writes data memory.
func (o Op) IsWrite() bool {
	switch o {
	case OpIStore, OpFStore, OpAtomicAdd, OpCmpXchg, OpXchg:
		return true
	}
	return false
}

// IsAtomic reports whether the opcode is an atomic read-modify-write.
func (o Op) IsAtomic() bool {
	switch o {
	case OpAtomicAdd, OpCmpXchg, OpXchg:
		return true
	}
	return false
}

// Cond is a comparison condition for OpBrCond and OpFCmp.
type Cond uint8

// Comparison conditions (signed for integers).
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
)

var condNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// EvalInt evaluates the condition on two signed integers.
func (c Cond) EvalInt(a, b int64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	case CondGE:
		return a >= b
	}
	return false
}

// EvalFloat evaluates the condition on two floats.
func (c Cond) EvalFloat(a, b float64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	case CondGE:
		return a >= b
	}
	return false
}

// Reg names a register in either the integer or floating-point file
// (the opcode determines which file an operand refers to).
type Reg uint8

// Register-file sizes.
const (
	NumIntRegs   = 32
	NumFloatRegs = 32
)

// Register naming convention used by the builders in this repository:
// R0–R15 are kernel-local scratch, R16–R23 are call arguments and return
// values (R16 is the return register), and R24–R31 are reserved for the
// threading runtime (libomp). The floating-point file follows the same
// split. The ISA itself does not enforce the convention.
const (
	RegZero Reg = 0 // by convention holds 0 in generated code; not hardwired
	RegArg0 Reg = 16
	RegArg1 Reg = 17
	RegArg2 Reg = 18
	RegArg3 Reg = 19
	RegArg4 Reg = 20
	RegRet  Reg = 16
	RegTmp0 Reg = 21
	RegTmp1 Reg = 22
	RegTmp2 Reg = 23
	RegRT0  Reg = 24
	RegRT1  Reg = 25
	RegRT2  Reg = 26
	RegRT3  Reg = 27
	RegRT4  Reg = 28
	RegRT5  Reg = 29
	RegRT6  Reg = 30
	RegTid  Reg = 31 // initialized to the thread ID at thread start
)

// Syscall numbers understood by the exec package's default OS model.
type SyscallNo int64

const (
	SysRand  SyscallNo = 1 // pseudo-random int64 (host entropy; recorded in pinballs)
	SysTime  SyscallNo = 2 // monotonic tick
	SysWrite SyscallNo = 3 // discard output; returns arg
)

// Instr is a single instruction. Instructions are values stored inline in
// their basic block; the Addr field is assigned by Program.Link.
type Instr struct {
	Op     Op
	Dst    Reg
	A, B   Reg
	UseImm bool    // B operand replaced by Imm (integer ops, BrCond)
	Imm    int64   // immediate / memory offset in words / syscall number
	FImm   float64 // immediate for OpFMov with UseImm
	Cond   Cond    // OpBrCond, OpFCmp
	Target int     // block index within the routine (OpBr, OpBrCond)
	Else   int     // fall-through block index (OpBrCond)
	Callee *Routine

	Addr uint64 // unique global address; assigned by Link
}

func (in *Instr) String() string {
	switch in.Op {
	case OpBr:
		return fmt.Sprintf("br -> b%d", in.Target)
	case OpBrCond:
		if in.UseImm {
			return fmt.Sprintf("brc.%s r%d, %d -> b%d else b%d", in.Cond, in.A, in.Imm, in.Target, in.Else)
		}
		return fmt.Sprintf("brc.%s r%d, r%d -> b%d else b%d", in.Cond, in.A, in.B, in.Target, in.Else)
	case OpCall:
		return fmt.Sprintf("call %s", in.Callee.Name)
	default:
		return in.Op.String()
	}
}

// Block is a single-entry straight-line sequence of instructions ending in
// a terminator (branch, return, or halt).
type Block struct {
	ID     int // index within the routine
	Label  string
	Instrs []Instr

	Routine *Routine
	Addr    uint64 // address of the first instruction; assigned by Link
	Global  int    // global block index across the program; assigned by Link
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return &b.Instrs[len(b.Instrs)-1]
}

func (b *Block) String() string {
	return fmt.Sprintf("%s.%s#%d", b.Routine.Name, b.Label, b.ID)
}

// Routine is a callable unit of blocks. Execution enters at Blocks[0].
type Routine struct {
	Name   string
	Blocks []*Block
	Image  *Image
	ID     int // index within the image
}

// NewBlock appends a new, empty block to the routine and returns it.
func (r *Routine) NewBlock(label string) *Block {
	b := &Block{ID: len(r.Blocks), Label: label, Routine: r}
	r.Blocks = append(r.Blocks, b)
	return b
}

// Image is a loadable unit: the main binary or a library. Images flagged
// Sync hold synchronization code (e.g. the OpenMP runtime); profiling
// filters their instructions out of BBVs and never places region markers
// inside them (paper Sections II and IV-F).
type Image struct {
	Name     string
	Sync     bool
	Routines []*Routine
	Program  *Program
	ID       int
}

// NewRoutine appends a new routine to the image and returns it.
func (img *Image) NewRoutine(name string) *Routine {
	r := &Routine{Name: name, Image: img, ID: len(img.Routines)}
	img.Routines = append(img.Routines, r)
	return r
}

// Program is a complete linked unit: images, the per-thread entry
// routines, and the size of the shared data memory.
type Program struct {
	Name     string
	Images   []*Image
	Entries  []*Routine // entry routine per thread; len == NumThreads
	MemWords uint64     // shared memory size in 8-byte words

	symbols map[string]uint64
	brk     uint64 // allocation high-water mark, in words

	linked      bool
	numBlocks   int
	numInstrs   int
	blockByAddr map[uint64]*Block
}

// NewProgram creates an empty program for nthreads threads.
func NewProgram(name string, nthreads int) *Program {
	if nthreads < 1 {
		panic("isa: program needs at least one thread")
	}
	return &Program{
		Name:    name,
		Entries: make([]*Routine, nthreads),
		symbols: make(map[string]uint64),
		brk:     64, // keep address 0 unused; low words reserved
	}
}

// NumThreads returns the thread count the program was built for.
func (p *Program) NumThreads() int { return len(p.Entries) }

// AddImage appends an image. Sync images hold synchronization-library code.
func (p *Program) AddImage(name string, sync bool) *Image {
	img := &Image{Name: name, Sync: sync, Program: p, ID: len(p.Images)}
	p.Images = append(p.Images, img)
	return img
}

// Alloc reserves n words of shared memory under the given symbol name and
// returns the word address of the first element.
func (p *Program) Alloc(name string, n uint64) uint64 {
	if _, dup := p.symbols[name]; dup {
		panic(fmt.Sprintf("isa: duplicate symbol %q", name))
	}
	addr := p.brk
	p.symbols[name] = addr
	p.brk += n
	// Pad to a cache line (8 words) so unrelated symbols do not
	// false-share unless a workload asks for it explicitly.
	if rem := p.brk % 8; rem != 0 {
		p.brk += 8 - rem
	}
	return addr
}

// AllocUnaligned reserves n words without cache-line padding, for workloads
// that deliberately construct false sharing.
func (p *Program) AllocUnaligned(name string, n uint64) uint64 {
	if _, dup := p.symbols[name]; dup {
		panic(fmt.Sprintf("isa: duplicate symbol %q", name))
	}
	addr := p.brk
	p.symbols[name] = addr
	p.brk += n
	return addr
}

// Symbol returns the address of a previously allocated symbol.
func (p *Program) Symbol(name string) (uint64, bool) {
	a, ok := p.symbols[name]
	return a, ok
}

// SetEntry sets the entry routine for thread tid.
func (p *Program) SetEntry(tid int, r *Routine) {
	p.Entries[tid] = r
}

// NumBlocks returns the total number of basic blocks (valid after Link).
func (p *Program) NumBlocks() int { return p.numBlocks }

// NumInstrs returns the total number of static instructions (valid after Link).
func (p *Program) NumInstrs() int { return p.numInstrs }

// BlockByAddr returns the block whose first instruction is at addr.
func (p *Program) BlockByAddr(addr uint64) (*Block, bool) {
	b, ok := p.blockByAddr[addr]
	return b, ok
}

// Link assigns addresses to every instruction and block, sizes the memory,
// and validates the program. It must be called exactly once, after all
// code has been emitted and before execution.
func (p *Program) Link() error {
	if p.linked {
		return fmt.Errorf("isa: program %q already linked", p.Name)
	}
	// Code addresses live above the data segment so instruction fetch
	// and data accesses never alias in the caches.
	const codeAlign = 4 // words per instruction slot
	addr := p.brk + 4096
	p.blockByAddr = make(map[uint64]*Block)
	global := 0
	for _, img := range p.Images {
		for _, r := range img.Routines {
			if len(r.Blocks) == 0 {
				return fmt.Errorf("isa: routine %s/%s has no blocks", img.Name, r.Name)
			}
			for _, b := range r.Blocks {
				if len(b.Instrs) == 0 {
					return fmt.Errorf("isa: empty block %s", b)
				}
				b.Addr = addr
				b.Global = global
				global++
				p.blockByAddr[addr] = b
				for i := range b.Instrs {
					b.Instrs[i].Addr = addr
					addr += codeAlign
					p.numInstrs++
				}
				if err := p.checkBlock(b); err != nil {
					return err
				}
			}
		}
	}
	p.numBlocks = global
	p.MemWords = p.brk
	for tid, e := range p.Entries {
		if e == nil {
			return fmt.Errorf("isa: thread %d has no entry routine", tid)
		}
	}
	p.linked = true
	return nil
}

func (p *Program) checkBlock(b *Block) error {
	term := b.Terminator()
	if !term.Op.IsBranch() {
		return fmt.Errorf("isa: block %s does not end in a terminator (ends in %s)", b, term.Op)
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if in.Op.IsBranch() && i != len(b.Instrs)-1 {
			return fmt.Errorf("isa: block %s has mid-block terminator %s at %d", b, in.Op, i)
		}
		switch in.Op {
		case OpBr:
			if in.Target < 0 || in.Target >= len(b.Routine.Blocks) {
				return fmt.Errorf("isa: block %s: branch target b%d out of range", b, in.Target)
			}
		case OpBrCond:
			if in.Target < 0 || in.Target >= len(b.Routine.Blocks) ||
				in.Else < 0 || in.Else >= len(b.Routine.Blocks) {
				return fmt.Errorf("isa: block %s: brcond targets (b%d, b%d) out of range", b, in.Target, in.Else)
			}
		case OpCall:
			if in.Callee == nil {
				return fmt.Errorf("isa: block %s: call with nil callee", b)
			}
		}
		if int(in.Dst) >= NumIntRegs || int(in.A) >= NumIntRegs || int(in.B) >= NumIntRegs {
			return fmt.Errorf("isa: block %s: register out of range in %s", b, in.Op)
		}
	}
	return nil
}

// Blocks returns all blocks in link order (valid after Link).
func (p *Program) Blocks() []*Block {
	out := make([]*Block, 0, p.numBlocks)
	for _, img := range p.Images {
		for _, r := range img.Routines {
			out = append(out, r.Blocks...)
		}
	}
	return out
}
