package isa

import (
	"fmt"
	"io"
	"strings"
)

// Disassemble writes a human-readable listing of the program: every
// image, routine, and block with addresses, instructions, and branch
// targets. It is the debugging view of generated workloads (the
// lpprofile -disasm flag).
func (p *Program) Disassemble(w io.Writer) error {
	for _, img := range p.Images {
		kind := "main"
		if img.Sync {
			kind = "sync library"
		}
		if _, err := fmt.Fprintf(w, "image %s (%s)\n", img.Name, kind); err != nil {
			return err
		}
		for _, r := range img.Routines {
			if _, err := fmt.Fprintf(w, "  routine %s\n", r.Name); err != nil {
				return err
			}
			for _, b := range r.Blocks {
				if _, err := fmt.Fprintf(w, "    b%-3d %s @%#x\n", b.ID, b.Label, b.Addr); err != nil {
					return err
				}
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if _, err := fmt.Fprintf(w, "      %#08x  %s\n", in.Addr, disasmInstr(in)); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

func disasmInstr(in *Instr) string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpNop, OpPause, OpRet, OpHalt:
	case OpBr:
		fmt.Fprintf(&b, " b%d", in.Target)
	case OpBrCond:
		if in.UseImm {
			fmt.Fprintf(&b, ".%s r%d, %d -> b%d / b%d", in.Cond, in.A, in.Imm, in.Target, in.Else)
		} else {
			fmt.Fprintf(&b, ".%s r%d, r%d -> b%d / b%d", in.Cond, in.A, in.B, in.Target, in.Else)
		}
	case OpCall:
		fmt.Fprintf(&b, " %s", in.Callee.Name)
	case OpILoad, OpFLoad:
		fmt.Fprintf(&b, " r%d, [r%d%+d]", in.Dst, in.A, in.Imm)
	case OpIStore, OpFStore:
		fmt.Fprintf(&b, " [r%d%+d], r%d", in.A, in.Imm, in.B)
	case OpAtomicAdd, OpCmpXchg, OpXchg:
		fmt.Fprintf(&b, " r%d, [r%d%+d], r%d", in.Dst, in.A, in.Imm, in.B)
	case OpFutexWait:
		fmt.Fprintf(&b, " [r%d%+d], r%d", in.A, in.Imm, in.B)
	case OpFutexWake:
		fmt.Fprintf(&b, " r%d, [r%d%+d], n=r%d", in.Dst, in.A, in.Imm, in.B)
	case OpSyscall:
		fmt.Fprintf(&b, " r%d, #%d(r%d)", in.Dst, in.Imm, in.A)
	case OpFMov:
		if in.UseImm {
			fmt.Fprintf(&b, " f%d, %g", in.Dst, in.FImm)
		} else {
			fmt.Fprintf(&b, " f%d, f%d", in.Dst, in.A)
		}
	case OpIMov:
		if in.UseImm {
			fmt.Fprintf(&b, " r%d, %d", in.Dst, in.Imm)
		} else {
			fmt.Fprintf(&b, " r%d, r%d", in.Dst, in.A)
		}
	case OpFCmp:
		fmt.Fprintf(&b, ".%s r%d, f%d, f%d", in.Cond, in.Dst, in.A, in.B)
	default:
		if in.UseImm {
			fmt.Fprintf(&b, " r%d, r%d, %d", in.Dst, in.A, in.Imm)
		} else {
			fmt.Fprintf(&b, " r%d, r%d, r%d", in.Dst, in.A, in.B)
		}
	}
	return b.String()
}
