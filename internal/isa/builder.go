package isa

// Emission helpers. Each method appends one instruction to the block and
// returns the block so short straight-line sequences can be chained.

func (b *Block) emit(in Instr) *Block {
	b.Instrs = append(b.Instrs, in)
	return b
}

// Nop appends a no-op.
func (b *Block) Nop() *Block { return b.emit(Instr{Op: OpNop}) }

// IOp appends an integer ALU op: dst = a op rb.
func (b *Block) IOp(op Op, dst, a, rb Reg) *Block {
	return b.emit(Instr{Op: op, Dst: dst, A: a, B: rb})
}

// IOpI appends an integer ALU op with immediate: dst = a op imm.
func (b *Block) IOpI(op Op, dst, a Reg, imm int64) *Block {
	return b.emit(Instr{Op: op, Dst: dst, A: a, UseImm: true, Imm: imm})
}

// IMov appends dst = a.
func (b *Block) IMov(dst, a Reg) *Block { return b.emit(Instr{Op: OpIMov, Dst: dst, A: a}) }

// IMovI appends dst = imm.
func (b *Block) IMovI(dst Reg, imm int64) *Block {
	return b.emit(Instr{Op: OpIMov, Dst: dst, UseImm: true, Imm: imm})
}

// FOp appends a float ALU op: fdst = fa op fb.
func (b *Block) FOp(op Op, dst, a, rb Reg) *Block {
	return b.emit(Instr{Op: op, Dst: dst, A: a, B: rb})
}

// FMovI appends fdst = fimm.
func (b *Block) FMovI(dst Reg, imm float64) *Block {
	return b.emit(Instr{Op: OpFMov, Dst: dst, UseImm: true, FImm: imm})
}

// FMA appends fdst = fa*fb + fdst.
func (b *Block) FMA(dst, a, rb Reg) *Block {
	return b.emit(Instr{Op: OpFMA, Dst: dst, A: a, B: rb})
}

// FCmp appends dst = (fa cond fb) ? 1 : 0 into the integer file.
func (b *Block) FCmp(cond Cond, dst, a, rb Reg) *Block {
	return b.emit(Instr{Op: OpFCmp, Cond: cond, Dst: dst, A: a, B: rb})
}

// ICvtF appends fdst = float(ra).
func (b *Block) ICvtF(dst, a Reg) *Block { return b.emit(Instr{Op: OpICvtF, Dst: dst, A: a}) }

// FCvtI appends dst = int(fa).
func (b *Block) FCvtI(dst, a Reg) *Block { return b.emit(Instr{Op: OpFCvtI, Dst: dst, A: a}) }

// ILoad appends dst = mem[ra+off] (as int64).
func (b *Block) ILoad(dst, addr Reg, off int64) *Block {
	return b.emit(Instr{Op: OpILoad, Dst: dst, A: addr, Imm: off})
}

// IStore appends mem[ra+off] = rb.
func (b *Block) IStore(addr Reg, off int64, src Reg) *Block {
	return b.emit(Instr{Op: OpIStore, A: addr, Imm: off, B: src})
}

// FLoad appends fdst = mem[ra+off] (as float64).
func (b *Block) FLoad(dst, addr Reg, off int64) *Block {
	return b.emit(Instr{Op: OpFLoad, Dst: dst, A: addr, Imm: off})
}

// FStore appends mem[ra+off] = fb.
func (b *Block) FStore(addr Reg, off int64, src Reg) *Block {
	return b.emit(Instr{Op: OpFStore, A: addr, Imm: off, B: src})
}

// AtomicAdd appends dst = fetch-and-add(mem[ra+off], rb).
func (b *Block) AtomicAdd(dst, addr Reg, off int64, src Reg) *Block {
	return b.emit(Instr{Op: OpAtomicAdd, Dst: dst, A: addr, Imm: off, B: src})
}

// CmpXchg appends a compare-and-swap: if mem[ra+off] == rb then
// mem = rnew and dst = 1 else dst = 0. The new value is taken from
// register dst before the operation (dst doubles as the value operand).
func (b *Block) CmpXchg(dst, addr Reg, off int64, expect Reg) *Block {
	return b.emit(Instr{Op: OpCmpXchg, Dst: dst, A: addr, Imm: off, B: expect})
}

// Xchg appends dst = swap(mem[ra+off], rb).
func (b *Block) Xchg(dst, addr Reg, off int64, src Reg) *Block {
	return b.emit(Instr{Op: OpXchg, Dst: dst, A: addr, Imm: off, B: src})
}

// Br appends an unconditional branch to the target block.
func (b *Block) Br(target *Block) *Block {
	return b.emit(Instr{Op: OpBr, Target: target.ID})
}

// BrCond appends a conditional branch: if ra cond rb goto target else els.
func (b *Block) BrCond(cond Cond, a, rb Reg, target, els *Block) *Block {
	return b.emit(Instr{Op: OpBrCond, Cond: cond, A: a, B: rb, Target: target.ID, Else: els.ID})
}

// BrCondI appends a conditional branch against an immediate.
func (b *Block) BrCondI(cond Cond, a Reg, imm int64, target, els *Block) *Block {
	return b.emit(Instr{Op: OpBrCond, Cond: cond, A: a, UseImm: true, Imm: imm, Target: target.ID, Else: els.ID})
}

// Call appends a call to the routine's entry block.
func (b *Block) Call(callee *Routine) *Block {
	return b.emit(Instr{Op: OpCall, Callee: callee})
}

// Ret appends a return.
func (b *Block) Ret() *Block { return b.emit(Instr{Op: OpRet}) }

// Halt appends a thread-halt.
func (b *Block) Halt() *Block { return b.emit(Instr{Op: OpHalt}) }

// FutexWait appends: if mem[ra+off] == rb, block until woken.
func (b *Block) FutexWait(addr Reg, off int64, expect Reg) *Block {
	return b.emit(Instr{Op: OpFutexWait, A: addr, Imm: off, B: expect})
}

// FutexWake appends: wake up to rb waiters on mem[ra+off]; dst = #woken.
func (b *Block) FutexWake(dst, addr Reg, off int64, n Reg) *Block {
	return b.emit(Instr{Op: OpFutexWake, Dst: dst, A: addr, Imm: off, B: n})
}

// Pause appends a spin-loop hint.
func (b *Block) Pause() *Block { return b.emit(Instr{Op: OpPause}) }

// Syscall appends dst = syscall(no, ra).
func (b *Block) Syscall(dst Reg, no SyscallNo, arg Reg) *Block {
	return b.emit(Instr{Op: OpSyscall, Dst: dst, A: arg, Imm: int64(no)})
}
