package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildTiny(t *testing.T) *Program {
	t.Helper()
	p := NewProgram("tiny", 1)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	b0 := r.NewBlock("entry")
	b1 := r.NewBlock("exit")
	b0.IMovI(1, 42)
	b0.Br(b1)
	b1.Halt()
	p.SetEntry(0, r)
	return p
}

func TestLinkAssignsAddresses(t *testing.T) {
	p := buildTiny(t)
	if err := p.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	r := p.Images[0].Routines[0]
	b0, b1 := r.Blocks[0], r.Blocks[1]
	if b0.Addr == 0 || b1.Addr == 0 {
		t.Fatalf("blocks not assigned addresses: %#x %#x", b0.Addr, b1.Addr)
	}
	if b0.Addr >= b1.Addr {
		t.Fatalf("block addresses not increasing: %#x >= %#x", b0.Addr, b1.Addr)
	}
	if b0.Instrs[0].Addr != b0.Addr {
		t.Fatalf("block addr %#x != first instr addr %#x", b0.Addr, b0.Instrs[0].Addr)
	}
	if got, ok := p.BlockByAddr(b1.Addr); !ok || got != b1 {
		t.Fatalf("BlockByAddr(%#x) = %v, %v", b1.Addr, got, ok)
	}
	if p.NumBlocks() != 2 || p.NumInstrs() != 3 {
		t.Fatalf("NumBlocks=%d NumInstrs=%d, want 2, 3", p.NumBlocks(), p.NumInstrs())
	}
}

func TestLinkTwiceFails(t *testing.T) {
	p := buildTiny(t)
	if err := p.Link(); err != nil {
		t.Fatalf("first Link: %v", err)
	}
	if err := p.Link(); err == nil {
		t.Fatal("second Link succeeded, want error")
	}
}

func TestLinkRejectsMissingTerminator(t *testing.T) {
	p := NewProgram("bad", 1)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	b := r.NewBlock("entry")
	b.IMovI(0, 1) // no terminator
	p.SetEntry(0, r)
	if err := p.Link(); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("Link = %v, want terminator error", err)
	}
}

func TestLinkRejectsMidBlockBranch(t *testing.T) {
	p := NewProgram("bad", 1)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	b := r.NewBlock("entry")
	b.Halt()
	b.IMovI(0, 1)
	b.Halt()
	p.SetEntry(0, r)
	if err := p.Link(); err == nil {
		t.Fatal("Link succeeded with mid-block terminator")
	}
}

func TestLinkRejectsBadTarget(t *testing.T) {
	p := NewProgram("bad", 1)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	b := r.NewBlock("entry")
	b.emit(Instr{Op: OpBr, Target: 7})
	p.SetEntry(0, r)
	if err := p.Link(); err == nil {
		t.Fatal("Link succeeded with out-of-range branch target")
	}
}

func TestLinkRejectsMissingEntry(t *testing.T) {
	p := NewProgram("bad", 2)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	r.NewBlock("entry").Halt()
	p.SetEntry(0, r) // thread 1 left without entry
	if err := p.Link(); err == nil {
		t.Fatal("Link succeeded with missing thread entry")
	}
}

func TestAllocLayout(t *testing.T) {
	p := NewProgram("alloc", 1)
	a := p.Alloc("a", 3)
	b := p.Alloc("b", 10)
	if a == b {
		t.Fatal("overlapping allocations")
	}
	if b < a+3 {
		t.Fatalf("allocation b=%d overlaps a=%d..%d", b, a, a+3)
	}
	if b%8 != 0 {
		t.Fatalf("aligned allocation b=%d not cache-line aligned", b)
	}
	if got, ok := p.Symbol("a"); !ok || got != a {
		t.Fatalf("Symbol(a) = %d, %v", got, ok)
	}
	if _, ok := p.Symbol("zzz"); ok {
		t.Fatal("Symbol(zzz) found")
	}
}

func TestAllocDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Alloc did not panic")
		}
	}()
	p := NewProgram("alloc", 1)
	p.Alloc("x", 1)
	p.Alloc("x", 1)
}

func TestCondEvalInt(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b int64
		want bool
	}{
		{CondEQ, 3, 3, true}, {CondEQ, 3, 4, false},
		{CondNE, 3, 4, true}, {CondNE, 3, 3, false},
		{CondLT, -1, 0, true}, {CondLT, 0, 0, false},
		{CondLE, 0, 0, true}, {CondLE, 1, 0, false},
		{CondGT, 5, 4, true}, {CondGT, 4, 4, false},
		{CondGE, 4, 4, true}, {CondGE, 3, 4, false},
	}
	for _, c := range cases {
		if got := c.c.EvalInt(c.a, c.b); got != c.want {
			t.Errorf("%v.EvalInt(%d,%d) = %v, want %v", c.c, c.a, c.b, got, c.want)
		}
	}
}

func TestCondConsistency(t *testing.T) {
	// Property: EQ/NE are complements, LT/GE are complements, LE/GT are
	// complements, for both integer and float evaluation.
	f := func(a, b int64) bool {
		return CondEQ.EvalInt(a, b) != CondNE.EvalInt(a, b) &&
			CondLT.EvalInt(a, b) != CondGE.EvalInt(a, b) &&
			CondLE.EvalInt(a, b) != CondGT.EvalInt(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		return CondEQ.EvalFloat(a, b) != CondNE.EvalFloat(a, b) &&
			CondLT.EvalFloat(a, b) != CondGE.EvalFloat(a, b) &&
			CondLE.EvalFloat(a, b) != CondGT.EvalFloat(a, b)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestOpClassification(t *testing.T) {
	if !OpBr.IsBranch() || !OpBrCond.IsBranch() || !OpRet.IsBranch() || !OpHalt.IsBranch() {
		t.Error("terminators not classified as branches")
	}
	if OpCall.IsBranch() {
		t.Error("OpCall must not terminate a block")
	}
	for _, o := range []Op{OpILoad, OpIStore, OpFLoad, OpFStore, OpAtomicAdd, OpCmpXchg, OpXchg} {
		if !o.IsMem() {
			t.Errorf("%v not classified as memory op", o)
		}
	}
	for _, o := range []Op{OpIStore, OpFStore, OpAtomicAdd, OpCmpXchg, OpXchg} {
		if !o.IsWrite() {
			t.Errorf("%v not classified as write", o)
		}
	}
	if OpILoad.IsWrite() || OpFLoad.IsWrite() {
		t.Error("loads classified as writes")
	}
	for _, o := range []Op{OpAtomicAdd, OpCmpXchg, OpXchg} {
		if !o.IsAtomic() {
			t.Errorf("%v not classified as atomic", o)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for o := OpNop; o < opMax; o++ {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", o)
		}
	}
}
