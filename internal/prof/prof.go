// Package prof wires the standard runtime/pprof profilers into the
// command-line tools (the -pprof-cpu / -pprof-heap flags): the fast-path
// work in this repository was guided by exactly these profiles, and the
// flags keep that loop one invocation away.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that finalizes the CPU profile and, when heapPath is
// non-empty, writes a heap profile after a final GC. The stop function
// must be called exactly once on the normal exit path; error exits via
// os.Exit simply leave the profiles truncated or unwritten.
func Start(cpuPath, heapPath string) (stop func(), err error) {
	var cpu *os.File
	if cpuPath != "" {
		cpu, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("prof: start CPU profile: %w", err)
		}
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "prof: close CPU profile: %v\n", err)
			}
		}
		if heapPath != "" {
			f, err := os.Create(heapPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: write heap profile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "prof: close heap profile: %v\n", err)
			}
		}
	}, nil
}
