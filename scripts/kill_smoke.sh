#!/usr/bin/env bash
# kill_smoke.sh — the crash-only worker drill: SIGKILL a worker mid-job
# and prove the restart resumes from durable progress instead of
# recomputing, with a byte-identical result:
#   1. build lpserved; run the reference job on a worker WITHOUT
#      -progress-dir and keep its (volatile-field-stripped) response
#   2. boot a worker WITH -progress-dir, submit the same job, poll
#      /v1/stats until durable epochs exist, then kill -9 the worker
#   3. restart a worker over the same progress dir, resubmit the job:
#      the response must be byte-identical to the reference and
#      /v1/stats must show recoveries >= 1 with recovery_steps_saved > 0
#   4. the per-request log line must carry the progress delta fields
#   5. pending-checkpoint leg: hand a worker a drain checkpoint at boot
#      and assert it resubmits the job, moves the file aside, and
#      completes the work
# Used by `make kill-smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."
SMOKE_NAME=kill-smoke
source "$(dirname "$0")/smoke_lib.sh"
smoke_init

JOB='{"class":"analyze","app":"npb-ft","input":"test","threads":4}'
progdir="$workdir/progress"

echo "kill-smoke: building lpserved"
go build -o "$workdir/lpserved" ./cmd/lpserved

# start_worker <name> <extra flags...>: boots one lpserved, sets
# WORKER_BASE/WORKER_PID. (No command substitution around the body — the
# pid bookkeeping must land in this shell, not a subshell.)
start_worker() {
    local name=$1 log="$workdir/$1.log"
    shift
    smoke_track_log "$log"
    "$workdir/lpserved" -addr 127.0.0.1:0 -quick -slice 2000 -input test \
        -drain-deadline 5s "$@" >"$log" 2>&1 &
    WORKER_PID=$!
    disown "$WORKER_PID" # workers die by SIGKILL; keep bash from reporting it
    smoke_track_pid "$WORKER_PID"
    WORKER_BASE=$(wait_for_addr "$log" "$WORKER_PID")
    WORKER_LOG=$log
}

# normalize: strip the per-run volatile fields (server-minted id, queue
# wait, run time, attempts) so responses compare byte-for-byte on the
# deterministic payload alone.
normalize() {
    sed -E 's/"id":"[^"]*",?//; s/"queue_wait_ms":[0-9]+,?//; s/"run_ms":[0-9]+,?//; s/"attempts":[0-9]+,?//'
}

# stat_field <json> <field>: extract one numeric counter from /v1/stats.
stat_field() {
    echo "$1" | sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p"
}

echo "kill-smoke: reference run (no progress dir)"
start_worker ref -pending ""
curl -fsS -m 300 -H 'Content-Type: application/json' -d "$JOB" \
    "$WORKER_BASE/v1/jobs" | normalize >"$workdir/ref.json"
grep -q 'looppoints' "$workdir/ref.json" || fail "reference job failed: $(cat "$workdir/ref.json")"
kill -KILL "$WORKER_PID" 2>/dev/null || true

echo "kill-smoke: booting durable worker (progress dir $progdir)"
start_worker victim -pending "" -progress-dir "$progdir" -progress-every 1024
victim_base=$WORKER_BASE; victim_pid=$WORKER_PID

echo "kill-smoke: submitting job, waiting for durable epochs, then kill -9"
curl -fsS -m 300 -H 'Content-Type: application/json' -d "$JOB" \
    "$victim_base/v1/jobs" >/dev/null 2>&1 &
curlpid=$!
saves=""
stats=""
for _ in $(seq 1 600); do
    stats=$(curl -fsS -m 5 "$victim_base/v1/stats" 2>/dev/null) || true
    saves=$(stat_field "${stats:-}" progress_saves)
    [[ -n "$saves" && "$saves" -ge 2 ]] && break
    kill -0 "$victim_pid" 2>/dev/null || fail "victim worker died on its own"
    sleep 0.02
done
[[ -n "$saves" && "$saves" -ge 1 ]] || fail "no durable epochs were saved before the job finished"
kill -KILL "$victim_pid" 2>/dev/null || true
wait "$curlpid" 2>/dev/null || true
echo "kill-smoke: killed the worker after $saves durable save(s)"
ls "$progdir" | grep -q '\.progress$\|\.pinball$' || fail "progress dir is empty after the kill"

echo "kill-smoke: restarting over the same progress dir and resubmitting"
start_worker survivor -pending "" -progress-dir "$progdir" -progress-every 1024
surv_log=$WORKER_LOG
curl -fsS -m 300 -H 'Content-Type: application/json' -d "$JOB" \
    "$WORKER_BASE/v1/jobs" | normalize >"$workdir/resumed.json"
diff -u "$workdir/ref.json" "$workdir/resumed.json" || \
    fail "post-crash result is not byte-identical to the uninterrupted reference"
stats=$(curl -fsS -m 5 "$WORKER_BASE/v1/stats")
recoveries=$(stat_field "$stats" recoveries)
steps=$(stat_field "$stats" recovery_steps_saved)
[[ -n "$recoveries" && "$recoveries" -ge 1 ]] || fail "restart did not recover durable progress: $stats"
[[ -n "$steps" && "$steps" -gt 0 ]] || fail "recovery saved no steps: $stats"
grep -q 'outcome=ok.*progress_saves=' "$surv_log" || \
    fail "per-request log line is missing the progress delta fields"
echo "kill-smoke: crash recovery verified (recoveries=$recoveries steps_saved=$steps)"
kill -KILL "$WORKER_PID" 2>/dev/null || true

echo "kill-smoke: pending-checkpoint resubmission leg"
pending="$workdir/pending.jsonl"
printf '{"state":"queued","job":%s}\n' "$JOB" >"$pending"
start_worker resubmitter -pending "$pending" -progress-dir "$progdir"
grep -q 'resubmitted=1' "$WORKER_LOG" || fail "boot did not resubmit the pending job"
[[ ! -e "$pending" ]] || fail "consumed pending checkpoint was not moved aside"
[[ -e "$pending.resubmitted" ]] || fail "pending checkpoint was not renamed to .resubmitted"
stats=""
done_n=""
for _ in $(seq 1 600); do
    stats=$(curl -fsS -m 5 "$WORKER_BASE/v1/stats" 2>/dev/null) || true
    done_n=$(stat_field "${stats:-}" completed)
    [[ -n "$done_n" && "$done_n" -ge 1 ]] && break
    kill -0 "$WORKER_PID" 2>/dev/null || fail "resubmitter worker died"
    sleep 0.05
done
[[ -n "$done_n" && "$done_n" -ge 1 ]] || fail "resubmitted job never completed: ${stats:-}"
resub=$(stat_field "$stats" resubmitted)
[[ "$resub" == "1" ]] || fail "stats resubmitted=$resub, want 1: $stats"
echo "kill-smoke: pending checkpoint resubmitted and completed"

echo "kill-smoke: PASS"
