#!/usr/bin/env bash
# serve_smoke.sh — boot lpserved, prove the serving loop end to end, and
# assert a clean SIGTERM drain:
#   1. build and start the daemon on an ephemeral port
#   2. /readyz answers ready
#   3. one analyze job round-trips with a 200
#   4. a 3-job batch round-trips with per-job results
#   5. SIGTERM lands while a second batch is in flight: the batch still
#      answers with a disposition for every sub-job and the daemon exits 0
#   6. the drain is reported and, when everything finished in time, clean
# Used by `make serve-smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."
SMOKE_NAME=serve-smoke
source "$(dirname "$0")/smoke_lib.sh"
smoke_init
srvlog="$workdir/lpserved.log"
smoke_track_log "$srvlog"

echo "serve-smoke: building lpserved"
go build -o "$workdir/lpserved" ./cmd/lpserved

# Quick evaluator configuration so the job finishes in seconds; tiny
# drain deadline so shutdown is snappy.
"$workdir/lpserved" -addr 127.0.0.1:0 -quick -slice 2000 -input test \
    -drain-deadline 10s -pending "$workdir/pending.jsonl" \
    >"$srvlog" 2>&1 &
pid=$!
smoke_track_pid "$pid"

# The daemon prints "listening on http://<addr>" once bound.
base=$(wait_for_addr "$srvlog" "$pid")
echo "serve-smoke: daemon up at $base (pid $pid)"

ready=$(curl -fsS "$base/readyz")
echo "$ready" | grep -q '"ready":true' || fail "/readyz not ready: $ready"

echo "serve-smoke: submitting analyze job"
job=$(curl -fsS -m 120 -H 'Content-Type: application/json' \
    -d '{"class":"analyze","app":"npb-cg","input":"test","threads":4}' \
    "$base/v1/jobs")
echo "$job" | grep -q '"summary"' || fail "job did not return a summary: $job"
echo "$job" | grep -q 'looppoints' || fail "unexpected job payload: $job"
echo "serve-smoke: job ok: $job"

health=$(curl -fsS "$base/healthz")
echo "$health" | grep -q '"completed":1' || fail "/healthz does not count the job: $health"

echo "serve-smoke: submitting 3-job batch"
batch=$(curl -fsS -m 180 -H 'Content-Type: application/json' \
    -d '{"jobs":[
        {"id":"batch-0","class":"analyze","app":"npb-cg","input":"test","threads":4},
        {"id":"batch-1","class":"analyze","app":"npb-cg","input":"test","threads":4},
        {"id":"batch-2","class":"analyze","app":"npb-ft","input":"test","threads":4}]}' \
    "$base/v1/batch")
echo "$batch" | grep -q '"succeeded":3' || fail "batch did not succeed all 3 jobs: $batch"
for id in batch-0 batch-1 batch-2; do
    echo "$batch" | grep -q "\"id\":\"$id\"" || fail "batch response missing per-job result $id: $batch"
done
echo "serve-smoke: batch ok"

health=$(curl -fsS "$base/healthz")
echo "$health" | grep -q '"batches":1' || fail "/healthz does not count the batch: $health"
echo "$health" | grep -q '"completed":4' || fail "/healthz does not count batch sub-jobs: $health"

echo "serve-smoke: sending SIGTERM mid-batch"
# Launch a batch of cold (un-memoized) workloads and drain while it is
# in flight. Whatever the race — sub-jobs finished, flushed as drained,
# or canceled mid-run — the batch must answer with 3 dispositions and
# the daemon must exit 0.
curl -fsS -m 180 -H 'Content-Type: application/json' \
    -d '{"jobs":[
        {"id":"drain-0","class":"analyze","app":"npb-bt","input":"test","threads":4},
        {"id":"drain-1","class":"analyze","app":"npb-lu","input":"test","threads":4},
        {"id":"drain-2","class":"analyze","app":"npb-sp","input":"test","threads":4}]}' \
    "$base/v1/batch" >"$workdir/drain_batch.json" &
curlpid=$!
# Signal only once the server has actually received the batch, so the
# drain genuinely races the in-flight request rather than the connect.
for _ in $(seq 1 100); do
    curl -fsS -m 5 "$base/healthz" 2>/dev/null | grep -q '"batches":2' && break
    kill -0 "$curlpid" 2>/dev/null || break
    sleep 0.05
done
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
[[ "$rc" -eq 0 ]] || fail "daemon exited $rc after SIGTERM, want 0"
wait "$curlpid" || fail "mid-drain batch request failed outright"
drain_batch=$(cat "$workdir/drain_batch.json")
for id in drain-0 drain-1 drain-2; do
    echo "$drain_batch" | grep -q "\"id\":\"$id\"" || \
        fail "mid-drain batch lost sub-job $id: $drain_batch"
done
echo "serve-smoke: mid-drain batch answered every sub-job"
grep -q 'drained clean=' "$srvlog" || fail "daemon did not report its drain"
if grep -q 'drained clean=true' "$srvlog"; then
    [[ ! -e "$workdir/pending.jsonl" ]] || fail "clean drain left a pending checkpoint"
fi
pid=""

echo "serve-smoke: PASS"
