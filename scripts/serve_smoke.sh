#!/usr/bin/env bash
# serve_smoke.sh — boot lpserved, prove the serving loop end to end, and
# assert a clean SIGTERM drain:
#   1. build and start the daemon on an ephemeral port
#   2. /readyz answers ready
#   3. one analyze job round-trips with a 200
#   4. SIGTERM → the daemon drains, reports it, and exits 0
# Used by `make serve-smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
srvlog="$workdir/lpserved.log"
pid=""
cleanup() {
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
        kill -KILL "$pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- lpserved log ---" >&2
    cat "$srvlog" >&2 || true
    exit 1
}

echo "serve-smoke: building lpserved"
go build -o "$workdir/lpserved" ./cmd/lpserved

# Quick evaluator configuration so the job finishes in seconds; tiny
# drain deadline so shutdown is snappy.
"$workdir/lpserved" -addr 127.0.0.1:0 -quick -slice 2000 -input test \
    -drain-deadline 10s -pending "$workdir/pending.jsonl" \
    >"$srvlog" 2>&1 &
pid=$!

# The daemon prints "listening on http://<addr>" once bound.
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's/^lpserved: listening on \(http:\/\/[^ ]*\)$/\1/p' "$srvlog" | head -1)
    [[ -n "$base" ]] && break
    kill -0 "$pid" 2>/dev/null || fail "daemon exited before binding"
    sleep 0.1
done
[[ -n "$base" ]] || fail "daemon never printed its listen address"
echo "serve-smoke: daemon up at $base (pid $pid)"

ready=$(curl -fsS "$base/readyz")
echo "$ready" | grep -q '"ready":true' || fail "/readyz not ready: $ready"

echo "serve-smoke: submitting analyze job"
job=$(curl -fsS -m 120 -H 'Content-Type: application/json' \
    -d '{"class":"analyze","app":"npb-cg","input":"test","threads":4}' \
    "$base/v1/jobs")
echo "$job" | grep -q '"summary"' || fail "job did not return a summary: $job"
echo "$job" | grep -q 'looppoints' || fail "unexpected job payload: $job"
echo "serve-smoke: job ok: $job"

health=$(curl -fsS "$base/healthz")
echo "$health" | grep -q '"completed":1' || fail "/healthz does not count the job: $health"

echo "serve-smoke: sending SIGTERM"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
[[ "$rc" -eq 0 ]] || fail "daemon exited $rc after SIGTERM, want 0"
grep -q 'drained clean=true' "$srvlog" || fail "daemon did not report a clean drain"
[[ ! -e "$workdir/pending.jsonl" ]] || fail "clean drain left a pending checkpoint"
pid=""

echo "serve-smoke: PASS"
