#!/usr/bin/env bash
# campaign_smoke.sh — the campaign fabric end to end, with a real worker
# kill:
#   1. build lpserved + lpcoord, boot 2 workers on OS-assigned ports
#   2. run a 6-job NPB campaign through the coordinator with a journal
#      and result cache, SIGKILLing one worker mid-flight
#   3. assert the campaign completes, exits 0, and every job reports
#   4. run the same campaign on a fresh single worker and assert the two
#      reports are byte-identical — fleet shape, kills, and retries must
#      not leak into the output
#   5. re-run with the same journal/cache and assert zero dispatches:
#      every job resolves from the content-addressed cache
# Used by `make campaign-smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."
SMOKE_NAME=campaign-smoke
source "$(dirname "$0")/smoke_lib.sh"
smoke_init

APPS="npb-cg,npb-ft,npb-is,npb-mg,npb-lu,npb-bt"

echo "campaign-smoke: building lpserved and lpcoord"
go build -o "$workdir/lpserved" ./cmd/lpserved
go build -o "$workdir/lpcoord" ./cmd/lpcoord

# start_worker <name>: boots one lpserved, sets WORKER_BASE/WORKER_PID.
# Every worker shares one -progress-dir, so a job leased from a killed
# worker resumes the victim's durable epochs on its replacement instead
# of restarting from step 0.
# (No command substitution around the body — the pid bookkeeping must
# land in this shell, not a subshell.)
start_worker() {
    local name=$1 log="$workdir/$1.log"
    smoke_track_log "$log"
    "$workdir/lpserved" -addr 127.0.0.1:0 -quick -slice 2000 -input test \
        -drain-deadline 5s -pending "" -progress-dir "$workdir/progress" \
        >"$log" 2>&1 &
    WORKER_PID=$!
    disown "$WORKER_PID" # workers die by SIGKILL; keep bash from reporting it
    smoke_track_pid "$WORKER_PID"
    WORKER_BASE=$(wait_for_addr "$log" "$WORKER_PID")
}

start_worker worker0; w0=$WORKER_BASE
start_worker worker1; w1=$WORKER_BASE; w1pid=$WORKER_PID
echo "campaign-smoke: fleet up at $w0 $w1"

coordlog="$workdir/lpcoord.log"
smoke_track_log "$coordlog"
run_coord() { # run_coord <out> <workers> <extra flags...>
    local out=$1 workers=$2
    shift 2
    "$workdir/lpcoord" -workers "$workers" \
        -apps "$APPS" -class analyze -input test -threads 4 \
        -tag smoke -lease 60s -request-timeout 300s -seed 7 \
        -out "$out" "$@" 2>>"$coordlog"
}

echo "campaign-smoke: launching 6-job campaign across 2 workers"
run_coord "$workdir/report_fleet.txt" "$w0,$w1" \
    -resume "$workdir/campaign.jsonl" -cache "$workdir/cache" -v &
coordpid=$!
smoke_track_pid "$coordpid"

# SIGKILL worker1 once the campaign is genuinely in flight: the fabric
# must absorb the crash by rerouting its leased jobs to worker0.
for _ in $(seq 1 200); do
    grep -q 'campaign "smoke": 6 jobs' "$coordlog" 2>/dev/null && break
    kill -0 "$coordpid" 2>/dev/null || break
    sleep 0.05
done
sleep 1
kill -KILL "$w1pid" 2>/dev/null || true
echo "campaign-smoke: killed worker1 mid-flight"

rc=0
wait "$coordpid" || rc=$?
[[ "$rc" -eq 0 ]] || fail "lpcoord exited $rc with a worker killed mid-flight, want 0"
grep -q 'failed=0' "$coordlog" || fail "campaign reported failed jobs"
[[ $(wc -l <"$workdir/report_fleet.txt") -eq 7 ]] || \
    fail "fleet report should have 1 header + 6 job lines: $(cat "$workdir/report_fleet.txt")"
# The coordinator folds the fleet's /v1/stats durable-progress counters
# into its stats line; with a shared -progress-dir the surviving worker
# must have journaled durable epochs.
fleet_stats=$(grep 'campaign stats:' "$coordlog" | tail -1)
echo "$fleet_stats" | grep -q 'progress_saves=[1-9]' || \
    fail "fleet stats line missing durable-progress saves: $fleet_stats"
echo "$fleet_stats" | grep -q 'recovery_steps_saved=' || \
    fail "fleet stats line missing recovery counters: $fleet_stats"
echo "campaign-smoke: campaign survived the worker kill"

echo "campaign-smoke: rerunning on a single fresh worker for the reference report"
start_worker worker2; w2=$WORKER_BASE
run_coord "$workdir/report_single.txt" "$w2" || fail "single-worker campaign failed"
diff -u "$workdir/report_single.txt" "$workdir/report_fleet.txt" || \
    fail "fleet report is not byte-identical to the single-node report"
echo "campaign-smoke: fleet and single-node reports are byte-identical"

echo "campaign-smoke: resuming the finished campaign (must re-simulate nothing)"
run_coord "$workdir/report_resume.txt" "$w0" \
    -resume "$workdir/campaign.jsonl" -cache "$workdir/cache" || \
    fail "resume run failed"
stats=$(grep 'campaign stats:' "$coordlog" | tail -1)
echo "$stats" | grep -q 'dispatched=0' || fail "resume re-dispatched work: $stats"
echo "$stats" | grep -q 'cache_hits=6' || fail "resume did not hit the cache for all 6 jobs: $stats"
cmp -s "$workdir/report_resume.txt" "$workdir/report_fleet.txt" || \
    fail "resumed report diverges from the original"
echo "campaign-smoke: resume served all 6 jobs from the cache"

echo "campaign-smoke: PASS"
