# smoke_lib.sh — shared plumbing for the smoke scripts (serve_smoke.sh,
# campaign_smoke.sh). Source it, don't run it:
#
#   SMOKE_NAME=my-smoke
#   source "$(dirname "$0")/smoke_lib.sh"
#   smoke_init
#
# Provides:
#   smoke_init             make $workdir, arm the cleanup trap
#   smoke_track_pid PID    ensure PID is KILLed on exit
#   smoke_track_log FILE   dump FILE on any failure
#   fail MSG...            report, dump tracked logs, exit 1
#   wait_for_addr LOG PID  poll LOG for the daemon's printed listen
#                          address ("lpserved: listening on http://…",
#                          OS-assigned when booted with -addr :0) and
#                          echo the base URL
#
# Every daemon is booted on 127.0.0.1:0 — the OS assigns a free port and
# the daemon prints it — so parallel CI jobs never collide on a port.

workdir=""
SMOKE_PIDS=()
SMOKE_LOGS=()

smoke_init() {
    workdir=$(mktemp -d)
    trap smoke_cleanup EXIT
}

smoke_cleanup() {
    local p
    for p in "${SMOKE_PIDS[@]:-}"; do
        [[ -n "$p" ]] && kill -KILL "$p" 2>/dev/null || true
    done
    [[ -n "$workdir" ]] && rm -rf "$workdir"
}

smoke_track_pid() { SMOKE_PIDS+=("$1"); }
smoke_track_log() { SMOKE_LOGS+=("$1"); }

fail() {
    echo "$SMOKE_NAME: FAIL: $*" >&2
    local log
    for log in "${SMOKE_LOGS[@]:-}"; do
        [[ -n "$log" ]] || continue
        echo "--- $(basename "$log") ---" >&2
        cat "$log" >&2 || true
    done
    exit 1
}

wait_for_addr() {
    local log=$1 pid=$2 base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's/^lpserved: listening on \(http:\/\/[^ ]*\)$/\1/p' "$log" | head -1)
        [[ -n "$base" ]] && break
        kill -0 "$pid" 2>/dev/null || fail "daemon (pid $pid) exited before binding"
        sleep 0.1
    done
    [[ -n "$base" ]] || fail "daemon (pid $pid) never printed its listen address"
    echo "$base"
}
