# Convenience targets mirroring the paper artifact's workflow.

.PHONY: build test test-race test-faults test-stats serve-smoke campaign-smoke kill-smoke bench bench-analyze bench-scaling report report-full demo clean

build:
	go build ./...

test:
	go test ./...

# Everything under the race detector (slower; exercises the worker pool,
# singleflight memoization, and every concurrent experiment fan-out).
test-race:
	go test -race ./...

# Fault-tolerance suites (injection, retries, corruption matrices,
# quarantine, degradation, resume) under the race detector, swept over
# five injection seeds. Injection is a pure function of the seed, so
# each seed is a distinct — and exactly reproducible — failure pattern.
test-faults:
	for seed in 1 2 3 4 5; do \
		FAULTS_SEED=$$seed go test -race \
			-run 'Fault|Corrupt|Quarantine|Degrad|Resume|Retry|Truncat|Panic' \
			./internal/faults/ ./internal/pool/ ./internal/pinball/ \
			./internal/core/ ./internal/harness/ ./internal/exec/ \
			./internal/serve/ ./internal/campaign/ . \
			|| exit 1; \
	done

# Statistical verification of the selection engines: the estimator
# unit suite, the seeded calibration sweeps (empirical coverage of the
# nominal 95% interval, Neyman-vs-proportional half-widths, estimator
# bias — hundreds of fully seeded trials, so the verdicts are
# deterministic), and the per-engine property/fuzz invariants.
test-stats:
	go test -count=1 ./internal/stats/
	go test -count=1 -run 'Calibration|Selector|Stratified|Golden|Fuzz' \
		-v ./internal/simpoint/

# Boot the lpserved daemon, hit /readyz and one job endpoint, then
# SIGTERM it and assert a clean drain and exit 0.
serve-smoke:
	bash scripts/serve_smoke.sh

# The campaign fabric end to end: lpcoord sharding a 6-job campaign
# across two lpserved workers, one SIGKILLed mid-flight; asserts
# completion, a report byte-identical to a single-node run, and a
# resume that re-simulates nothing (all cache hits, zero dispatches).
campaign-smoke:
	bash scripts/campaign_smoke.sh

# Crash-only worker drill: SIGKILL an lpserved mid-analyze, restart it
# over the same -progress-dir, and assert the resubmitted job resumes
# from durable epochs (recoveries >= 1, recovery_steps_saved > 0) with a
# result byte-identical to an uninterrupted run; plus the boot-time
# pending-checkpoint resubmission leg.
kill-smoke:
	bash scripts/kill_smoke.sh

# One benchmark per paper table/figure plus ablations (quick subsets).
bench:
	go test -run xxx -bench . -benchtime 1x .

# The complete SPEC CPU2017 + NPB suites (much longer).
bench-full:
	LOOPPOINT_FULL=1 go test -run xxx -bench . -benchtime 1x .

# Checkpoint-parallel analysis front-end: serial vs sharded Analyze at
# GOMAXPROCS widths 1/2/4/8 (the parallel benchmark sets AnalyzeWorkers
# to GOMAXPROCS, so the -cpu axis is the worker axis). Feeds
# BENCH_analyze.json; see the oversubscription note on bench-scaling.
bench-analyze:
	go test -run xxx -cpu 1,2,4,8 -bench 'Analyze(Serial|Parallel)' \
		-benchtime 3x ./internal/core/

# Multi-core scaling sweep: the data-plane and kernel benchmarks at
# GOMAXPROCS widths 1/2/4/8 (results carry a -N suffix per width).
# Feeds the cpus axis in the BENCH_*.json files; on hosts with fewer
# cores the wider runs measure oversubscription, which is still worth
# recording — the pool fan-out must not collapse when oversubscribed.
bench-scaling:
	go test -run xxx -cpu 1,2,4,8 -bench . -benchtime 1000x \
		./internal/pool/
	go test -run xxx -cpu 1,2,4,8 -bench 'Pinball|Checksum' -benchtime 100x \
		./internal/pinball/ ./internal/artifact/
	go test -run xxx -cpu 1,2,4,8 -bench 'PerRegion' -benchtime 20x \
		./internal/timing/
	go test -run xxx -cpu 1,2,4,8 -bench 'Interpreter' -benchtime 100000x \
		./internal/exec/
	go test -run xxx -cpu 1,2,4,8 -bench 'Cluster' -benchtime 3x \
		./internal/simpoint/

# Regenerate the evaluation as a text report.
report:
	go run ./cmd/lpreport -quick

report-full:
	go run ./cmd/lpreport

# The artifact's demo: end-to-end LoopPoint on the demo application.
demo:
	go run ./cmd/looppoint -p demo-matrix-1 -n 8 -i train

clean:
	go clean ./...
