# Convenience targets mirroring the paper artifact's workflow.

.PHONY: build test test-race bench report report-full demo clean

build:
	go build ./...

test:
	go test ./...

# Everything under the race detector (slower; exercises the worker pool,
# singleflight memoization, and every concurrent experiment fan-out).
test-race:
	go test -race ./...

# One benchmark per paper table/figure plus ablations (quick subsets).
bench:
	go test -run xxx -bench . -benchtime 1x .

# The complete SPEC CPU2017 + NPB suites (much longer).
bench-full:
	LOOPPOINT_FULL=1 go test -run xxx -bench . -benchtime 1x .

# Regenerate the evaluation as a text report.
report:
	go run ./cmd/lpreport -quick

report-full:
	go run ./cmd/lpreport

# The artifact's demo: end-to-end LoopPoint on the demo application.
demo:
	go run ./cmd/looppoint -p demo-matrix-1 -n 8 -i train

clean:
	go clean ./...
