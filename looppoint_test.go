package looppoint

import (
	"strings"
	"testing"
)

func TestWorkloadsRegistry(t *testing.T) {
	names := Workloads()
	if len(names) < 20 {
		t.Fatalf("only %d workloads registered", len(names))
	}
	for _, want := range []string{"603.bwaves_s.1", "657.xz_s.2", "npb-cg", "demo-matrix-1"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("workload %s missing", want)
		}
	}
}

func TestBuildWorkloadErrors(t *testing.T) {
	if _, err := BuildWorkload("no-such-app", WorkloadOptions{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	w, err := BuildWorkload("demo-matrix-1", WorkloadOptions{Threads: 4, Input: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if w.Threads() != 4 || w.Name() != "demo-matrix-1" {
		t.Errorf("workload meta wrong: %s/%d", w.Name(), w.Threads())
	}
}

func TestEvaluateQuickstartFlow(t *testing.T) {
	w, err := BuildWorkload("demo-matrix-1", WorkloadOptions{Threads: 4, Input: "test"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SliceUnit = 2000
	rep, err := Evaluate(w, cfg, EvalOptions{CompareFull: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Full == nil {
		t.Fatal("full simulation missing")
	}
	if rep.RuntimeErrPct > 20 {
		t.Errorf("demo error %.2f%% too high", rep.RuntimeErrPct)
	}
	if !strings.Contains(rep.Summary(), "demo-matrix-1") {
		t.Errorf("summary: %s", rep.Summary())
	}
}

func TestAnalyzeOnlyFlow(t *testing.T) {
	w, err := BuildWorkload("demo-matrix-2", WorkloadOptions{Threads: 4, Input: "test", Policy: Active})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SliceUnit = 2000
	sel, err := Analyze(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Points) == 0 {
		t.Fatal("no looppoints selected")
	}
	serial, parallel := TheoreticalSpeedups(sel)
	if serial < 1 || parallel < serial {
		t.Errorf("speedups: serial %.2f parallel %.2f", serial, parallel)
	}
}

func TestSystemConfigs(t *testing.T) {
	g := Gainestown(8)
	if g.Cores != 8 || g.FreqGHz != 2.66 || g.ROB != 128 {
		t.Errorf("Gainestown config wrong: %+v", g)
	}
	io := InOrderSystem(8)
	if io.Kind == g.Kind {
		t.Error("in-order config not distinct")
	}
	if Experiments(true) == nil {
		t.Error("no evaluator")
	}
}

func TestExportSelectionAndPinballs(t *testing.T) {
	w, err := BuildWorkload("demo-matrix-3", WorkloadOptions{Threads: 4, Input: "test"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SliceUnit = 3000
	sel, err := Analyze(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ExportSelection(sel, dir+"/sel.json"); err != nil {
		t.Fatalf("ExportSelection: %v", err)
	}
	paths, err := ExportRegionPinballs(sel, dir+"/regions")
	if err != nil {
		t.Fatalf("ExportRegionPinballs: %v", err)
	}
	if len(paths) != len(sel.Points) {
		t.Fatalf("exported %d pinballs for %d looppoints", len(paths), len(sel.Points))
	}
}
