module looppoint

go 1.22
