// microarch-portability: the Figure 5b experiment — LoopPoint's analysis
// is microarchitecture-independent, so the same looppoints predict
// runtime accurately on a completely different core model. This example
// evaluates one workload on the Gainestown-like out-of-order system and
// again on an in-order system, reusing the same methodology parameters.
package main

import (
	"fmt"
	"log"

	"looppoint"
)

func main() {
	const app = "619.lbm_s.1"
	cfg := looppoint.DefaultConfig()

	type outcome struct {
		label   string
		errPct  float64
		runtime float64
		ipc     float64
	}
	var rows []outcome
	for _, inorder := range []bool{false, true} {
		w, err := looppoint.BuildWorkload(app, looppoint.WorkloadOptions{
			Input:  "train",
			Policy: looppoint.Passive,
		})
		if err != nil {
			log.Fatal(err)
		}
		opts := looppoint.EvalOptions{CompareFull: true}
		label := "out-of-order (Gainestown-like)"
		if inorder {
			sys := looppoint.InOrderSystem(w.Threads())
			opts.System = &sys
			label = "in-order"
		}
		rep, err := looppoint.Evaluate(w, cfg, opts)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, outcome{
			label:   label,
			errPct:  rep.RuntimeErrPct,
			runtime: rep.Full.RuntimeSeconds(),
			ipc:     rep.Full.IPC(),
		})
	}

	fmt.Printf("workload: %s (train, 8 threads, passive)\n\n", app)
	fmt.Println("core model                       full runtime   IPC     prediction err%")
	fmt.Println("-------------------------------  -------------  ------  ---------------")
	for _, r := range rows {
		fmt.Printf("%-31s  %11.6fs  %6.3f  %15.2f\n", r.label, r.runtime, r.ipc, r.errPct)
	}
	fmt.Println()
	fmt.Println("The in-order system is slower (lower IPC), yet the SAME region")
	fmt.Println("selection predicts its runtime too: looppoints are portable across")
	fmt.Println("microarchitectures because the up-front analysis never looks at one.")
}
