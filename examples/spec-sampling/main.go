// spec-sampling: sample SPEC CPU2017-style workloads under both OpenMP
// wait policies — including the barrier-free, heterogeneous 657.xz_s.2
// that defeats BarrierPoint — and report prediction error and speedups
// (the Figure 5a / Figure 8 experiment on two applications).
package main

import (
	"fmt"
	"log"

	"looppoint"
)

func main() {
	apps := []string{"603.bwaves_s.1", "657.xz_s.2"}
	fmt.Println("app                  policy   regions  looppoints  err%    theo serial  theo parallel")
	fmt.Println("-------------------  -------  -------  ----------  ------  -----------  -------------")
	for _, name := range apps {
		for _, policy := range []looppoint.WaitPolicy{looppoint.Active, looppoint.Passive} {
			w, err := looppoint.BuildWorkload(name, looppoint.WorkloadOptions{
				Input:  "train",
				Policy: policy,
			})
			if err != nil {
				log.Fatal(err)
			}
			rep, err := looppoint.Evaluate(w, looppoint.DefaultConfig(),
				looppoint.EvalOptions{CompareFull: true})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-19s  %-7v  %7d  %10d  %6.2f  %11.1f  %13.1f\n",
				name, policy,
				len(rep.Selection.Analysis.Profile.Regions),
				len(rep.Selection.Points),
				rep.RuntimeErrPct,
				rep.Speedups.TheoreticalSerial,
				rep.Speedups.TheoreticalParallel)
		}
	}
	fmt.Println()
	fmt.Println("657.xz_s.2 has no barriers and unbalanced threads: LoopPoint samples it")
	fmt.Println("anyway because loop iterations, not barriers, are the unit of work.")
}
