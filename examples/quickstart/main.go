// Quickstart: run the complete LoopPoint flow on the demo application —
// record, profile, cluster, simulate the chosen looppoints, extrapolate,
// and compare against the full detailed simulation. Mirrors the paper
// artifact's `./run-looppoint.py -p demo-matrix-1 -n 8 --force`.
package main

import (
	"fmt"
	"log"

	"looppoint"
)

func main() {
	w, err := looppoint.BuildWorkload("demo-matrix-1", looppoint.WorkloadOptions{
		Threads: 8,
		Input:   "train",
		Policy:  looppoint.Passive,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := looppoint.DefaultConfig()
	cfg.SliceUnit = 10_000 // the demo is small; slice finer than the default

	rep, err := looppoint.Evaluate(w, cfg, looppoint.EvalOptions{CompareFull: true})
	if err != nil {
		log.Fatal(err)
	}

	prof := rep.Selection.Analysis.Profile
	fmt.Printf("workload:             %s (%d threads)\n", w.Name(), w.Threads())
	fmt.Printf("instructions:         %d total, %d doing work\n", prof.TotalICount, prof.TotalFiltered)
	fmt.Printf("regions profiled:     %d\n", len(prof.Regions))
	fmt.Printf("looppoints selected:  %d\n", len(rep.Selection.Points))
	for _, lp := range rep.Selection.Points {
		fmt.Printf("  region %-3d %v .. %v, multiplier %.2f\n",
			lp.Region.Index, lp.Region.Start, lp.Region.End, lp.Multiplier)
	}
	fmt.Printf("predicted runtime:    %.6f s\n", rep.Predicted.Seconds)
	fmt.Printf("measured runtime:     %.6f s\n", rep.Full.RuntimeSeconds())
	fmt.Printf("prediction error:     %.2f %%\n", rep.RuntimeErrPct)
	fmt.Printf("theoretical speedup:  %.1fx serial, %.1fx parallel\n",
		rep.Speedups.TheoreticalSerial, rep.Speedups.TheoreticalParallel)
}
