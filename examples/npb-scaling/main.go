// npb-scaling: evaluate NAS Parallel Benchmarks at 8 and 16 threads
// (class C, passive wait policy) — the Figure 6 / Figure 10 experiment.
// Applications with different thread counts are profiled separately, as
// the paper requires; the same methodology applies unchanged.
package main

import (
	"fmt"
	"log"

	"looppoint"
)

func main() {
	apps := []string{"npb-cg", "npb-ep", "npb-is"}
	fmt.Println("app      threads  err%    actual serial  actual parallel")
	fmt.Println("-------  -------  ------  -------------  ---------------")
	for _, name := range apps {
		for _, threads := range []int{8, 16} {
			w, err := looppoint.BuildWorkload(name, looppoint.WorkloadOptions{
				Threads: threads,
				Input:   "C",
				Policy:  looppoint.Passive,
			})
			if err != nil {
				log.Fatal(err)
			}
			rep, err := looppoint.Evaluate(w, looppoint.DefaultConfig(),
				looppoint.EvalOptions{CompareFull: true})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-7s  %7d  %6.2f  %13.1f  %15.1f\n",
				name, threads, rep.RuntimeErrPct,
				rep.Speedups.ActualSerial, rep.Speedups.ActualParallel)
		}
	}
}
