// checkpoint-sharing: the workflow the paper highlights for pinballs —
// "Checkpoints are easier to share among multiple users than program
// binaries whose execution might require complex setup" (Section II).
// One user profiles an application and exports each looppoint as a
// self-contained region pinball; another user loads the files and
// simulates them (unconstrained, ELFie-style), then extrapolates
// whole-program performance — without ever re-running the analysis.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"looppoint"
	"looppoint/internal/core"
	"looppoint/internal/pinball"
	"looppoint/internal/timing"
)

func main() {
	dir, err := os.MkdirTemp("", "looppoints-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- User A: analyze once, export the sample. ---
	w, err := looppoint.BuildWorkload("619.lbm_s.1", looppoint.WorkloadOptions{Input: "train"})
	if err != nil {
		log.Fatal(err)
	}
	sel, err := looppoint.Analyze(w, looppoint.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	a := sel.Analysis
	var paths []string
	var multipliers []float64
	for _, lp := range sel.Points {
		r := lp.Region
		warm := r.StartICount
		if r.Index > 0 {
			warm = a.Profile.Regions[r.Index-1].StartICount
		}
		pbs, err := a.Pinball.ExtractRegions(a.Prog, []pinball.RegionSpec{{
			Name:            fmt.Sprintf("r%d", r.Index),
			WarmupStartStep: warm,
			StartStep:       r.StartICount,
			EndStep:         r.EndICount,
			Start:           r.Start,
			End:             r.End,
		}})
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, pbs[0].Name+".pinball")
		if err := pbs[0].Save(path); err != nil {
			log.Fatal(err)
		}
		paths = append(paths, path)
		multipliers = append(multipliers, lp.Multiplier)
	}
	fmt.Printf("user A exported %d looppoint checkpoints to %s\n\n", len(paths), dir)

	// --- User B: load the files and simulate, no analysis needed. ---
	wB, err := looppoint.BuildWorkload("619.lbm_s.1", looppoint.WorkloadOptions{Input: "train"})
	if err != nil {
		log.Fatal(err)
	}
	var results []core.RegionResult
	for i, path := range paths {
		pb, err := pinball.Load(path)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := timing.New(timing.Gainestown(wB.Threads()), wB.App.Prog)
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.SimulateCheckpoint(pb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %7d instrs, %8.0f cycles, IPC %.2f (multiplier %.1f)\n",
			filepath.Base(path), st.Instructions, st.Cycles, st.IPC(), multipliers[i])
		results = append(results, core.RegionResult{
			Point: core.LoopPoint{Multiplier: multipliers[i]},
			Stats: st,
		})
	}
	pred := core.Extrapolate(results, timing.Gainestown(1).FreqGHz)
	fmt.Printf("\nuser B's extrapolated runtime: %.6f s (%.0f cycles)\n", pred.Seconds, pred.Cycles)
}
